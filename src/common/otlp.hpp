// OTLP/JSON exporter riding the telemetry bus.
//
// OpenTelemetry's protocol (OTLP) is the lingua franca of observability
// backends; exporting in its JSON encoding lets a decor run land in any
// collector (Jaeger, Tempo, Prometheus via the collector) without a
// bespoke adapter. The sink subscribes to three bus streams:
//
//  - trace: each distinct trace causality id (PR 4) becomes one span —
//    start/end from the first/last record carrying that id, origin node
//    and retransmit count as attributes, and the name derived from the
//    first record's detail via a caller-supplied namer (common cannot
//    depend on net's message vocabulary).
//  - metrics: decor.metrics.v1 snapshots become resourceMetrics —
//    counters as monotonic sums, gauges as gauges, histogram quantile
//    summaries as <name>.p50/.p90/.p99 gauges.
//  - timeline: covered fraction / alive nodes / ARQ in-flight become
//    gauges too, so a run's convergence curve shows up in a metrics
//    backend even when the registry is disabled.
//
// Sim time maps to nanoseconds-from-zero (OTLP wants absolute unix nanos;
// a simulated world has no wall clock, and zero-based times keep the
// export deterministic). Endpoints: a file path (the whole document is
// rewritten on flush — idempotent), or "http://host:port/path" for a
// best-effort blocking POST of the same document on flush.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry.hpp"

namespace decor::common {

class OtlpSink : public TelemetrySink {
 public:
  /// Derives a span name from a trace record's kind and detail strings
  /// (e.g. "restore.request"). Empty result falls back to the kind.
  using SpanNamer =
      std::function<std::string(std::string_view kind, std::string_view detail)>;

  explicit OtlpSink(const std::string& endpoint,
                    std::string service_name = "decor-sim");

  void set_span_namer(SpanNamer namer) { namer_ = std::move(namer); }

  bool wants(TelemetryStream s) const noexcept override {
    return s == TelemetryStream::kTrace || s == TelemetryStream::kMetrics ||
           s == TelemetryStream::kTimeline;
  }
  void on_event(const TelemetryEvent& e) override;
  /// Renders and writes/POSTs the full OTLP document.
  void flush() override;

  /// Renders the current document (exposed for tests).
  std::string render_document() const;

  std::uint64_t spans() const noexcept { return spans_.size(); }
  std::uint64_t spans_dropped() const noexcept { return spans_dropped_; }

 private:
  struct Span {
    std::uint64_t trace_id = 0;
    double start_t = 0.0;
    double end_t = 0.0;
    std::string name;
    std::int64_t origin_node = -1;
    std::uint64_t records = 0;
    /// Transmissions sharing this trace id; an ARQ exchange's
    /// retransmissions are the tx count beyond the first.
    std::uint64_t tx_records = 0;
  };
  struct GaugePoint {
    double t = 0.0;
    double value = 0.0;
  };
  struct SumPoint {
    double t = 0.0;
    std::uint64_t value = 0;
  };

  void ingest_trace(std::string_view line);
  void ingest_metrics(std::string_view line);
  void ingest_timeline(std::string_view line);
  void write_to_endpoint(const std::string& doc);

  std::string endpoint_;
  std::string service_name_;
  SpanNamer namer_;
  // Keyed by trace id: deterministic document order regardless of record
  // interleaving.
  std::map<std::uint64_t, Span> spans_;
  std::map<std::string, std::vector<SumPoint>> sums_;
  std::map<std::string, std::vector<GaugePoint>> gauges_;
  std::uint64_t spans_dropped_ = 0;
  static constexpr std::size_t kMaxSpans = 50000;
  static constexpr std::size_t kMaxPoints = 100000;
};

}  // namespace decor::common
