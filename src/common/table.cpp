#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/require.hpp"

namespace decor::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DECOR_REQUIRE_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  DECOR_REQUIRE_MSG(row.size() == header_.size(),
                    "row arity does not match header");
  rows_.push_back(std::move(row));
}

void Table::add_row_numeric(const std::vector<double>& row, int precision) {
  std::vector<std::string> cells;
  cells.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    cells.push_back(os.str());
  }
  add_row(std::move(cells));
}

std::string Table::to_text() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
    for (const auto& row : rows_)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "  " : "") << std::left
       << std::setw(static_cast<int>(widths[c])) << header_[c];
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "  " : "") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c];
    os << '\n';
  }
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << (c ? "," : "") << header_[c];
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << '\n';
  }
  return os.str();
}

}  // namespace decor::common
