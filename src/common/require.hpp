// Lightweight runtime checking for preconditions and invariants.
//
// DECOR_REQUIRE is always on (API misuse should fail loudly in release
// builds too); DECOR_ASSERT compiles out under NDEBUG for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace decor::common {

/// Thrown when a DECOR_REQUIRE precondition is violated.
class RequireError : public std::logic_error {
 public:
  explicit RequireError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void require_fail(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "requirement failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw RequireError(os.str());
}
}  // namespace detail

}  // namespace decor::common

#define DECOR_REQUIRE(expr)                                                  \
  do {                                                                       \
    if (!(expr))                                                             \
      ::decor::common::detail::require_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DECOR_REQUIRE_MSG(expr, msg)                                          \
  do {                                                                        \
    if (!(expr))                                                              \
      ::decor::common::detail::require_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define DECOR_ASSERT(expr) ((void)0)
#else
#define DECOR_ASSERT(expr) DECOR_REQUIRE(expr)
#endif
