// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms behind a single enable switch.
//
// The paper's whole evaluation is quantitative (message overhead, energy
// per node, coverage over time), so the simulator and the engines publish
// their counts here instead of growing ad-hoc accessor pairs. Design
// constraints, in order:
//
//  1. Zero cost when disabled. Every mutation first reads one relaxed
//     atomic bool (the global enable flag) and returns; benches that do
//     not ask for telemetry pay one predictable branch per site.
//  2. Deterministic snapshots. Benches run trials through parallel_for,
//     so all accumulation is integer (counters, histogram bucket counts)
//     or exact small-integer gauge arithmetic — the final values are
//     independent of thread count and interleaving, which keeps --json
//     artifacts byte-identical across --threads settings.
//  3. Stable handles. counter()/gauge()/histogram() return references
//     that live as long as the process; hot paths cache them in
//     function-local statics and never touch the registry lock again.
//
// Values survive reset() as zeroes; registration is permanent (the
// snapshot schema only ever grows within one process).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace decor::common {

class JsonWriter;

namespace detail {
extern std::atomic<bool> g_metrics_enabled;
}  // namespace detail

/// Global metrics switch; off by default.
inline bool metrics_enabled() noexcept {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// Monotonic event count. inc() is a no-op while metrics are disabled.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept {
    if (!metrics_enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (e.g. deliveries in flight). add() is exact for
/// integral-valued gauges, which is all the deterministic snapshot
/// guarantee covers; set() is last-writer-wins and belongs in
/// single-threaded contexts.
class Gauge {
 public:
  void set(double v) noexcept {
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double delta) noexcept {
    if (!metrics_enabled()) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges,
/// with an implicit +inf overflow bucket. Only integer bucket counts are
/// kept (no floating sum) so concurrent observation stays deterministic.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 (the last bucket is the +inf overflow).
  std::size_t num_buckets() const noexcept { return bounds_.size() + 1; }
  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  /// Estimated q-quantile (q in [0,1]) from the bucket counts, linearly
  /// interpolated inside the target bucket (the lower edge of bucket 0 is
  /// taken as 0, and the overflow bucket clamps to the last bound). 0 for
  /// an empty histogram. Deterministic: pure integer-count arithmetic.
  double quantile(double q) const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  void enable(bool on) noexcept {
    detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return metrics_enabled(); }

  /// Finds or creates; the returned reference is stable for the process
  /// lifetime (cache it in a function-local static on hot paths).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// A histogram's bounds are fixed by its first registration; later
  /// lookups by the same name ignore `bounds`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  /// Zeroes every value; registrations stay.
  void reset();

  /// Snapshot as a JSON object, keys sorted by metric name:
  /// {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
  /// "counts":[...],"total":n}}}. Deterministic for integer-valued state.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  /// Summary form for periodic decor.metrics.v1 snapshots: writes the
  /// "counters"/"gauges"/"histograms" sections as members of the
  /// caller's already-open object (so a timestamp key can precede them).
  /// Histograms carry {"total":n,"p50":x,"p90":x,"p99":x} quantile
  /// estimates instead of raw buckets.
  void write_summary_members(JsonWriter& w) const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthand for MetricsRegistry::instance().
inline MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

}  // namespace decor::common
