#include "common/profile.hpp"

namespace decor::common {

namespace detail {
std::atomic<bool> g_profiling_enabled{false};
}  // namespace detail

void set_profiling_enabled(bool on) noexcept {
  detail::g_profiling_enabled.store(on, std::memory_order_relaxed);
  // Timing samples only reach a histogram through the registry, and the
  // registry drops observations while metrics are off; profiling implies
  // collection so a bare --profile run still produces data.
  if (on) metrics().enable(true);
}

Histogram& profile_histogram(const std::string& name) {
  return metrics().histogram(
      name, {1.0, 10.0, 50.0, 100.0, 500.0, 1e3, 5e3, 1e4, 1e5, 1e6});
}

}  // namespace decor::common
