#include "common/provenance.hpp"

#include "common/json.hpp"

#ifndef DECOR_GIT_SHA
#define DECOR_GIT_SHA "unknown"
#endif
#ifndef DECOR_BUILD_TYPE
#define DECOR_BUILD_TYPE "unknown"
#endif

namespace decor::common {

namespace {

const char* compiler_string() noexcept {
#if defined(__clang__)
  return "Clang " __clang_version__;
#elif defined(__GNUC__)
  return "GNU " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const char* build_git_sha() noexcept { return DECOR_GIT_SHA; }

const char* build_type() noexcept { return DECOR_BUILD_TYPE; }

const char* build_compiler() noexcept { return compiler_string(); }

void write_provenance(JsonWriter& w) {
  w.begin_object();
  w.key("git_sha");
  w.value(build_git_sha());
  w.key("build_type");
  w.value(build_type());
  w.key("compiler");
  w.value(build_compiler());
  w.end_object();
}

}  // namespace decor::common
