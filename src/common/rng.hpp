// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the library (random fields, failure
// injection, leader election, random placement) draw from decor::common::Rng
// so that every experiment is reproducible from a single 64-bit seed.
// The engine is xoshiro256** seeded through splitmix64, following the
// reference construction by Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace decor::common {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stateless 64-bit mix of a value (single splitmix64 round).
std::uint64_t mix64(std::uint64_t x) noexcept;

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the common draws (uniform double,
/// integer range, bernoulli) are provided as members to keep call sites
/// terse and portable across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state via splitmix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Next raw 64-bit output.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean) noexcept;

  /// Standard normal deviate (Box–Muller, no caching).
  double normal() noexcept;

  /// Derives an independent child generator; children with distinct tags
  /// are statistically independent of each other and of the parent's
  /// future output.
  Rng split(std::uint64_t tag) noexcept;

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples m distinct indices from [0, n) in uniformly random order.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t m);

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace decor::common
