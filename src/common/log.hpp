// Leveled logging to stderr, controlled by the DECOR_LOG environment
// variable (error | warn | info | debug; default warn). Logging is kept
// deliberately simple: the simulator has its own structured trace facility
// (sim/trace.hpp) for event-level observation.
#pragma once

#include <sstream>
#include <string>

namespace decor::common {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Current global level (initialized once from DECOR_LOG).
LogLevel log_level() noexcept;

/// Overrides the global level (mainly for tests).
void set_log_level(LogLevel level) noexcept;

/// Emits one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& msg);

}  // namespace decor::common

#define DECOR_LOG(level, expr)                                        \
  do {                                                                \
    if (static_cast<int>(level) <=                                    \
        static_cast<int>(::decor::common::log_level())) {             \
      std::ostringstream decor_log_os;                                \
      decor_log_os << expr;                                           \
      ::decor::common::log_line(level, decor_log_os.str());           \
    }                                                                 \
  } while (0)

#define DECOR_LOG_ERROR(expr) DECOR_LOG(::decor::common::LogLevel::kError, expr)
#define DECOR_LOG_WARN(expr) DECOR_LOG(::decor::common::LogLevel::kWarn, expr)
#define DECOR_LOG_INFO(expr) DECOR_LOG(::decor::common::LogLevel::kInfo, expr)
#define DECOR_LOG_DEBUG(expr) DECOR_LOG(::decor::common::LogLevel::kDebug, expr)
