#include "common/options.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace decor::common {

Options::Options(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      } else if (i + 1 < argc &&
                 std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        // "--key value" form: the next token is the value unless it is
        // itself a flag (negative numbers bind as values, as expected).
        kv_[arg.substr(2)] = argv[++i];
      } else {
        kv_[arg.substr(2)] = "true";
      }
    } else {
      positional_.push_back(std::move(arg));
    }
  }
}

bool Options::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Options::get_double(const std::string& key, double def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace decor::common
