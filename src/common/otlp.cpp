#include "common/otlp.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/json.hpp"
#include "common/log.hpp"

#ifndef _WIN32
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace decor::common {

namespace {

/// OTLP encodes all timestamps as unix-epoch nanoseconds in string form;
/// sim time is seconds from zero, so t=3.5s becomes "3500000000".
std::string sim_nanos(double t) {
  if (t < 0) t = 0;
  const auto ns = static_cast<std::uint64_t>(t * 1e9);
  return std::to_string(ns);
}

std::string hex_id(std::uint64_t v, int width) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%0*llx", width,
                static_cast<unsigned long long>(v));
  return buf;
}

void write_string_attr(JsonWriter& w, const char* key, const std::string& v) {
  w.begin_object();
  w.key("key");
  w.value(key);
  w.key("value");
  w.begin_object();
  w.key("stringValue");
  w.value(v);
  w.end_object();
  w.end_object();
}

void write_int_attr(JsonWriter& w, const char* key, std::int64_t v) {
  w.begin_object();
  w.key("key");
  w.value(key);
  w.key("value");
  w.begin_object();
  w.key("intValue");
  w.value(std::to_string(v));  // OTLP/JSON: 64-bit ints ride as strings
  w.end_object();
  w.end_object();
}

void write_resource(JsonWriter& w, const std::string& service) {
  w.key("resource");
  w.begin_object();
  w.key("attributes");
  w.begin_array();
  write_string_attr(w, "service.name", service);
  w.end_array();
  w.end_object();
}

}  // namespace

OtlpSink::OtlpSink(const std::string& endpoint, std::string service_name)
    : endpoint_(endpoint), service_name_(std::move(service_name)) {}

void OtlpSink::on_event(const TelemetryEvent& e) {
  if (e.header) return;  // schema headers carry no data
  switch (e.stream) {
    case TelemetryStream::kTrace:
      ingest_trace(e.line);
      break;
    case TelemetryStream::kMetrics:
      ingest_metrics(e.line);
      break;
    case TelemetryStream::kTimeline:
      ingest_timeline(e.line);
      break;
    default:
      break;
  }
}

void OtlpSink::ingest_trace(std::string_view line) {
  const auto doc = parse_json(line);
  if (!doc) return;
  const JsonValue* trace = doc->find("trace");
  if (!trace || !trace->is_number()) return;
  const auto id = static_cast<std::uint64_t>(trace->as_number());
  if (id == 0) return;  // untraced record
  auto it = spans_.find(id);
  if (it == spans_.end()) {
    if (spans_.size() >= kMaxSpans) {
      ++spans_dropped_;
      return;
    }
    Span s;
    s.trace_id = id;
    const JsonValue* t = doc->find("t");
    s.start_t = s.end_t = t ? t->as_number() : 0.0;
    const JsonValue* node = doc->find("node");
    s.origin_node = node && node->is_number()
                        ? static_cast<std::int64_t>(node->as_number())
                        : -1;
    const std::string kind =
        doc->find("kind") ? doc->find("kind")->as_string() : std::string();
    const std::string detail =
        doc->find("detail") ? doc->find("detail")->as_string() : std::string();
    if (namer_) s.name = namer_(kind, detail);
    if (s.name.empty()) s.name = kind.empty() ? "trace" : kind;
    it = spans_.emplace(id, std::move(s)).first;
  }
  Span& s = it->second;
  ++s.records;
  const JsonValue* t = doc->find("t");
  if (t) {
    const double tv = t->as_number();
    if (tv < s.start_t) s.start_t = tv;
    if (tv > s.end_t) s.end_t = tv;
  }
  const JsonValue* kind_rec = doc->find("kind");
  if (kind_rec && kind_rec->as_string() == "tx") ++s.tx_records;
}

void OtlpSink::ingest_metrics(std::string_view line) {
  const auto doc = parse_json(line);
  if (!doc) return;
  const JsonValue* t = doc->find("t");
  const double tv = t ? t->as_number() : 0.0;
  auto room = [this] {
    std::size_t points = 0;
    for (const auto& [_, v] : sums_) points += v.size();
    for (const auto& [_, v] : gauges_) points += v.size();
    return points < kMaxPoints;
  };
  if (const JsonValue* counters = doc->find("counters")) {
    for (const auto& [name, v] : counters->members()) {
      if (!room()) return;
      sums_[name].push_back(
          SumPoint{tv, static_cast<std::uint64_t>(v.as_number())});
    }
  }
  if (const JsonValue* gauges = doc->find("gauges")) {
    for (const auto& [name, v] : gauges->members()) {
      if (!room()) return;
      gauges_[name].push_back(GaugePoint{tv, v.as_number()});
    }
  }
  if (const JsonValue* hists = doc->find("histograms")) {
    for (const auto& [name, h] : hists->members()) {
      for (const char* q : {"p50", "p90", "p99"}) {
        const JsonValue* qv = h.find(q);
        if (!qv) continue;
        if (!room()) return;
        gauges_[name + "." + q].push_back(GaugePoint{tv, qv->as_number()});
      }
    }
  }
}

void OtlpSink::ingest_timeline(std::string_view line) {
  const auto doc = parse_json(line);
  if (!doc) return;
  const JsonValue* t = doc->find("t");
  if (!t) return;  // schema header or malformed
  const double tv = t->as_number();
  static constexpr struct {
    const char* key;
    const char* metric;
  } kSeries[] = {
      {"covered", "decor.coverage.fraction"},
      {"alive", "decor.nodes.alive"},
      {"uncovered", "decor.coverage.uncovered_points"},
      {"arq_in_flight", "decor.arq.in_flight"},
  };
  for (const auto& s : kSeries) {
    const JsonValue* v = doc->find(s.key);
    if (!v || !v->is_number()) continue;
    auto& series = gauges_[s.metric];
    if (series.size() >= kMaxPoints) continue;
    series.push_back(GaugePoint{tv, v->as_number()});
  }
}

std::string OtlpSink::render_document() const {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.key("resourceSpans");
  w.begin_array();
  if (!spans_.empty()) {
    w.begin_object();
    write_resource(w, service_name_);
    w.key("scopeSpans");
    w.begin_array();
    w.begin_object();
    w.key("scope");
    w.begin_object();
    w.key("name");
    w.value("decor.trace");
    w.end_object();
    w.key("spans");
    w.begin_array();
    for (const auto& [id, s] : spans_) {
      w.begin_object();
      w.key("traceId");
      w.value(hex_id(id, 32));
      w.key("spanId");
      w.value(hex_id(id, 16));
      w.key("name");
      w.value(s.name);
      w.key("kind");
      w.value(std::int64_t{1});  // SPAN_KIND_INTERNAL
      w.key("startTimeUnixNano");
      w.value(sim_nanos(s.start_t));
      w.key("endTimeUnixNano");
      w.value(sim_nanos(s.end_t));
      w.key("attributes");
      w.begin_array();
      if (s.origin_node >= 0) write_int_attr(w, "decor.node", s.origin_node);
      write_int_attr(w, "decor.records",
                     static_cast<std::int64_t>(s.records));
      write_int_attr(w, "decor.retransmits",
                     s.tx_records > 1
                         ? static_cast<std::int64_t>(s.tx_records - 1)
                         : 0);
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("resourceMetrics");
  w.begin_array();
  if (!sums_.empty() || !gauges_.empty()) {
    w.begin_object();
    write_resource(w, service_name_);
    w.key("scopeMetrics");
    w.begin_array();
    w.begin_object();
    w.key("scope");
    w.begin_object();
    w.key("name");
    w.value("decor.metrics");
    w.end_object();
    w.key("metrics");
    w.begin_array();
    for (const auto& [name, points] : sums_) {
      w.begin_object();
      w.key("name");
      w.value(name);
      w.key("sum");
      w.begin_object();
      w.key("aggregationTemporality");
      w.value(std::int64_t{2});  // CUMULATIVE
      w.key("isMonotonic");
      w.value(true);
      w.key("dataPoints");
      w.begin_array();
      for (const auto& p : points) {
        w.begin_object();
        w.key("timeUnixNano");
        w.value(sim_nanos(p.t));
        w.key("asInt");
        w.value(std::to_string(p.value));
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.end_object();
    }
    for (const auto& [name, points] : gauges_) {
      w.begin_object();
      w.key("name");
      w.value(name);
      w.key("gauge");
      w.begin_object();
      w.key("dataPoints");
      w.begin_array();
      for (const auto& p : points) {
        w.begin_object();
        w.key("timeUnixNano");
        w.value(sim_nanos(p.t));
        w.key("asDouble");
        w.value(p.value);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    w.end_array();
    w.end_object();
  }
  w.end_array();
  if (spans_dropped_ > 0) {
    w.key("droppedSpans");
    w.value(spans_dropped_);
  }
  w.end_object();
  return os.str();
}

void OtlpSink::flush() { write_to_endpoint(render_document()); }

void OtlpSink::write_to_endpoint(const std::string& doc) {
  if (endpoint_.rfind("http://", 0) == 0) {
#ifndef _WIN32
    // Best-effort blocking POST; export failure must never fail the run.
    const std::string rest = endpoint_.substr(7);
    const auto slash = rest.find('/');
    const std::string hostport =
        slash == std::string::npos ? rest : rest.substr(0, slash);
    const std::string path =
        slash == std::string::npos ? "/v1/traces" : rest.substr(slash);
    const auto colon = hostport.rfind(':');
    const std::string host =
        colon == std::string::npos ? hostport : hostport.substr(0, colon);
    const std::string port =
        colon == std::string::npos ? "4318" : hostport.substr(colon + 1);
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || !res) {
      DECOR_LOG_WARN("otlp: cannot resolve " + endpoint_);
      return;
    }
    int fd = -1;
    for (addrinfo* ai = res; ai; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0) {
      DECOR_LOG_WARN("otlp: cannot connect " + endpoint_);
      return;
    }
    std::ostringstream req;
    req << "POST " << path << " HTTP/1.1\r\n"
        << "Host: " << hostport << "\r\n"
        << "Content-Type: application/json\r\n"
        << "Content-Length: " << doc.size() << "\r\n"
        << "Connection: close\r\n\r\n"
        << doc;
    const std::string payload = req.str();
    std::size_t off = 0;
    while (off < payload.size()) {
      const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        DECOR_LOG_WARN("otlp: post failed for " + endpoint_);
        break;
      }
      off += static_cast<std::size_t>(n);
    }
    char drain[512];
    while (::read(fd, drain, sizeof drain) > 0) {
    }
    ::close(fd);
#else
    DECOR_LOG_WARN("otlp: http endpoints unsupported on this platform");
#endif
    return;
  }
  // File endpoint: rewrite the whole document so flush is idempotent.
  std::ofstream out(endpoint_, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    DECOR_LOG_ERROR("otlp: cannot open export file: " + endpoint_);
    return;
  }
  out << doc << '\n';
}

}  // namespace decor::common
