// Engine dispatch and the paper's named experiment configurations.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "decor/centralized.hpp"
#include "decor/deployment.hpp"
#include "decor/grid_engine.hpp"
#include "decor/params.hpp"
#include "decor/random_placement.hpp"
#include "decor/voronoi_engine.hpp"

namespace decor::core {

/// Runs the engine selected by `scheme` on `field`.
DeploymentResult run_engine(Scheme scheme, Field& field, common::Rng& rng,
                            EngineLimits limits = {});

/// The six configurations of Section 4, in the order the figures list
/// them: Grid small cell (5x5), Grid big cell (10x10), Voronoi small rc
/// (8), Voronoi big rc (10*sqrt(2)), Centralized, Random. `base` supplies
/// everything except scheme-specific cell_side / rc.
std::vector<NamedConfig> paper_configs(const DecorParams& base);

/// The four DECOR variants only (Figure 10 has no baselines).
std::vector<NamedConfig> decor_configs(const DecorParams& base);

}  // namespace decor::core
