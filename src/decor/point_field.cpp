#include "decor/point_field.hpp"

#include "common/require.hpp"
#include "lds/halton.hpp"
#include "lds/hammersley.hpp"
#include "lds/random_points.hpp"

namespace decor::core {

std::vector<geom::Point2> make_points(const DecorParams& params,
                                      common::Rng& rng) {
  switch (params.point_kind) {
    case PointKind::kHalton:
      return lds::halton_points(params.field, params.num_points,
                                params.scramble_seed);
    case PointKind::kHammersley:
      return lds::hammersley_points(params.field, params.num_points, 2,
                                    params.scramble_seed);
    case PointKind::kRandom:
      return lds::random_points(params.field, params.num_points, rng);
    case PointKind::kJittered:
      return lds::jittered_points(params.field, params.num_points, rng);
  }
  DECOR_REQUIRE_MSG(false, "unknown point kind");
  return {};
}

Field::Field(const DecorParams& p, common::Rng& rng)
    : params(p),
      map(p.field, make_points(p, rng), p.rs),
      sensors(p.field, p.rs, p.rs) {
  DECOR_REQUIRE_MSG(p.rs <= p.rc, "the paper's model requires rs <= rc");
  DECOR_REQUIRE_MSG(p.k >= 1, "coverage requirement must be >= 1");
}

void Field::deploy_random(std::size_t n, common::Rng& rng) {
  for (std::size_t i = 0; i < n; ++i) {
    deploy(lds::random_point(params.field, rng));
  }
}

void Field::deploy_random_heterogeneous(std::size_t n, double rs_min,
                                        double rs_max, common::Rng& rng) {
  DECOR_REQUIRE_MSG(0.0 < rs_min && rs_min <= rs_max,
                    "invalid heterogeneous radius range");
  for (std::size_t i = 0; i < n; ++i) {
    deploy(lds::random_point(params.field, rng),
           rng.uniform(rs_min, rs_max));
  }
}

std::uint32_t Field::deploy(geom::Point2 pos) {
  return deploy(pos, params.rs);
}

std::uint32_t Field::deploy(geom::Point2 pos, double rs) {
  const auto id = sensors.add(pos, rs);
  map.add_disc(pos, rs);
  return id;
}

void Field::fail(std::uint32_t id) {
  if (!sensors.alive(id)) return;
  const auto& s = sensors.sensor(id);
  const auto pos = s.pos;
  const double rs = s.rs > 0.0 ? s.rs : params.rs;
  sensors.kill(id);
  map.remove_disc(pos, rs);
}

void Field::revive(std::uint32_t id) {
  if (sensors.alive(id)) return;
  const auto& s = sensors.sensor(id);
  const auto pos = s.pos;
  const double rs = s.rs > 0.0 ? s.rs : params.rs;
  sensors.revive(id);
  map.add_disc(pos, rs);
}

}  // namespace decor::core
