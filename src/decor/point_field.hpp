// Field construction: approximation points + initial sensor deployment.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "coverage/coverage_map.hpp"
#include "coverage/sensor.hpp"
#include "decor/params.hpp"

namespace decor::core {

/// The mutable experiment state shared by all engines: the ground-truth
/// coverage map over the approximation points and the deployed sensors.
struct Field {
  Field(const DecorParams& params, common::Rng& rng);

  /// Deploys `n` sensors uniformly at random (the paper's initial
  /// deployment of "up to 200 nodes").
  void deploy_random(std::size_t n, common::Rng& rng);

  /// Deploys `n` random sensors with sensing radii drawn uniformly from
  /// [rs_min, rs_max] — a heterogeneous initial network (Section 2).
  void deploy_random_heterogeneous(std::size_t n, double rs_min,
                                   double rs_max, common::Rng& rng);

  /// Deploys one sensor at `pos` with the network-wide rs. Returns its id.
  std::uint32_t deploy(geom::Point2 pos);

  /// Deploys one sensor with an explicit sensing radius.
  std::uint32_t deploy(geom::Point2 pos, double rs);

  /// Kills sensor `id` and removes its coverage contribution (using the
  /// radius it was deployed with).
  void fail(std::uint32_t id);

  /// Undoes a fail: restores the sensor and re-adds its sensing disc.
  /// No-op if the sensor is already alive.
  void revive(std::uint32_t id);

  DecorParams params;
  coverage::CoverageMap map;
  coverage::SensorSet sensors;
};

/// Generates the approximation point set for `params` (Halton by default).
std::vector<geom::Point2> make_points(const DecorParams& params,
                                      common::Rng& rng);

}  // namespace decor::core
