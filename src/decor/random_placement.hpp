// Random placement baseline (Section 4).
//
// Sensors are dropped at uniformly random positions until every point is
// k-covered (or the budget runs out). The paper uses it as the
// no-intelligence lower bound; it needs roughly 4x the nodes of any other
// method and produces the most redundancy.
#pragma once

#include "common/rng.hpp"
#include "decor/deployment.hpp"
#include "decor/point_field.hpp"

namespace decor::core {

/// Default budget guard: random placement's tail is long (the last
/// uncovered point waits for a lucky dart), so harnesses pass an explicit
/// cap through EngineLimits when they need a bound.
DeploymentResult random_placement(Field& field, common::Rng& rng,
                                  EngineLimits limits = {});

}  // namespace decor::core
