#include "decor/grid_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/require.hpp"
#include "coverage/benefit_index.hpp"
#include "geometry/grid_partition.hpp"

namespace decor::core {

namespace {

/// What one leader believes about its cell. Believed per-point coverage
/// and Equation-1 benefits live in the shared BenefitIndex (points are
/// labelled with their cell, and belief updates are cell-scoped), so the
/// cell record only keeps the counters the round loop steers by.
struct CellState {
  std::vector<std::uint32_t> point_ids;  // global ids of points in the cell
  std::size_t uncovered = 0;             // points believed below k
  bool has_leader = false;
  std::size_t members = 0;  // initial alive sensors (election accounting)
};

/// A placement decided this round, pending simultaneous application.
struct Decision {
  std::size_t cell;
  geom::Point2 pos;
  bool is_seed;
};

class GridEngine {
 public:
  GridEngine(Field& field, common::Rng& rng, EngineLimits limits)
      : field_(field),
        rng_(rng),
        limits_(limits),
        k_(field.params.k),
        rs_(field.params.rs),
        partition_(field.params.field, field.params.cell_side) {}

  DeploymentResult run();

 private:
  void build_initial_state();
  /// Cell `cell` learns of a disc at `pos`: its belief about its own
  /// points updates, nothing else.
  void local_add_disc(std::size_t cell, geom::Point2 pos, double radius);
  /// Best uncovered point of `cell` by local benefit; false if none.
  bool best_point(const CellState& cell, geom::Point2& out) const;
  void apply(const Decision& d, DeploymentResult& result);

  Field& field_;
  common::Rng& rng_;
  EngineLimits limits_;
  std::uint32_t k_;
  double rs_;
  geom::GridPartition partition_;
  std::vector<CellState> cells_;
  std::unique_ptr<coverage::BenefitIndex> beliefs_;
};

void GridEngine::build_initial_state() {
  cells_.assign(partition_.num_cells(), CellState{});
  const auto& index = field_.map.index();
  std::vector<std::int64_t> owners(index.size(), 0);
  for (std::size_t id = 0; id < index.size(); ++id) {
    const std::size_t c = partition_.cell_of(index.point(id));
    owners[id] = static_cast<std::int64_t>(c);
    cells_[c].point_ids.push_back(static_cast<std::uint32_t>(id));
  }
  // Beliefs start at zero coverage: a leader only knows what it is told.
  beliefs_ = std::make_unique<coverage::BenefitIndex>(
      field_.map.index_ptr(), rs_, k_, std::move(owners), 0,
      coverage::ShardSpec{field_.params.shards});
  for (std::size_t c = 0; c < cells_.size(); ++c) {
    cells_[c].uncovered = cells_[c].point_ids.size();
  }
  // Leaders know the sensors inside their own cell and nothing beyond:
  // each initial sensor contributes only to its home cell's belief
  // (heterogeneous sensors contribute with their own radius).
  field_.sensors.for_each([&](const coverage::Sensor& s) {
    if (!s.alive) return;
    const std::size_t c = partition_.cell_of(s.pos);
    cells_[c].has_leader = true;
    ++cells_[c].members;
    local_add_disc(c, s.pos, s.rs > 0.0 ? s.rs : rs_);
  });
}

void GridEngine::local_add_disc(std::size_t cell, geom::Point2 pos,
                                double radius) {
  cells_[cell].uncovered -= beliefs_->add_disc_owned(
      pos, radius, static_cast<std::int64_t>(cell));
}

bool GridEngine::best_point(const CellState& cell, geom::Point2& out) const {
  // Benefit over the points this leader is responsible for (its own
  // cell), per Equation 1 evaluated on the leader's belief — an O(1)
  // read per candidate from the maintained index.
  std::uint64_t best_benefit = 0;
  bool found = false;
  for (const std::uint32_t pid : cell.point_ids) {
    if (beliefs_->count(pid) >= k_) continue;
    const std::uint64_t b = beliefs_->benefit(pid);
    if (!found || b > best_benefit) {
      best_benefit = b;
      out = field_.map.index().point(pid);
      found = true;
    }
  }
  return found;
}

void GridEngine::apply(const Decision& d, DeploymentResult& result) {
  field_.deploy(d.pos);
  ++result.placed_nodes;
  result.placements.push_back(d.pos);

  local_add_disc(d.cell, d.pos, rs_);
  auto& own = cells_[d.cell];
  if (d.is_seed) {
    own.has_leader = true;
    ++own.members;
    // The fresh leader queries each adjacent leader for the
    // cross-boundary placements it missed (one exchange per neighbor).
    for (std::size_t nb : partition_.neighbors_of(d.cell)) {
      if (cells_[nb].has_leader) ++result.messages;
    }
  }
  // Boundary reconciliation: inform each neighboring cell whose area the
  // new disc reaches. The belief update models what the notified leader
  // (present or future) learns; a message is only on the air when a
  // leader exists to receive it.
  for (std::size_t nb : partition_.neighbors_of(d.cell)) {
    if (!partition_.rect_of(nb).intersects_disc(d.pos, rs_)) continue;
    local_add_disc(nb, d.pos, rs_);
    if (cells_[nb].has_leader) ++result.messages;
  }
  if (limits_.on_place) limits_.on_place(result.placed_nodes, field_.map);
}

DeploymentResult GridEngine::run() {
  DeploymentResult result;
  result.initial_nodes = field_.sensors.alive_count();
  build_initial_state();
  result.cells = partition_.num_cells();

  // Election accounting: every member bids once, the winner announces.
  for (const auto& cell : cells_) {
    if (cell.members > 0) result.messages += cell.members + 1;
  }

  while (result.placed_nodes < limits_.max_new_nodes) {
    std::vector<Decision> decisions;

    // Leaders decide simultaneously on round-start knowledge.
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      auto& cell = cells_[c];
      if (!cell.has_leader || cell.uncovered == 0) continue;
      geom::Point2 pos;
      if (best_point(cell, pos)) {
        decisions.push_back(Decision{c, pos, false});
      }
    }

    // Seeding: an adjacent leader deploys a starter node into an
    // uncovered leaderless cell (one seeding directive message each).
    for (std::size_t c = 0; c < cells_.size(); ++c) {
      auto& cell = cells_[c];
      if (cell.has_leader || cell.uncovered == 0) continue;
      bool adjacent_leader = false;
      for (std::size_t nb : partition_.neighbors_of(c)) {
        if (cells_[nb].has_leader) {
          adjacent_leader = true;
          break;
        }
      }
      if (!adjacent_leader) continue;
      // The seeding leader does not know the cell's interior, so it drops
      // the starter at the approximation point nearest the cell center.
      const geom::Point2 center = partition_.rect_of(c).center();
      double best_d = 0.0;
      geom::Point2 pos{};
      bool found = false;
      for (std::uint32_t pid : cell.point_ids) {
        const auto p = field_.map.index().point(pid);
        const double d2 = geom::distance_sq(p, center);
        if (!found || d2 < best_d) {
          best_d = d2;
          pos = p;
          found = true;
        }
      }
      if (found) {
        decisions.push_back(Decision{c, pos, true});
        ++result.messages;  // the seeding directive
      }
    }

    if (decisions.empty()) {
      // Either everything the leaders know of is covered, or uncovered
      // cells exist with no leader anywhere near them. The latter needs
      // out-of-band intervention (base station / robot): seed the worst
      // such cell directly.
      std::size_t worst = cells_.size();
      for (std::size_t c = 0; c < cells_.size(); ++c) {
        if (cells_[c].has_leader || cells_[c].uncovered == 0) continue;
        if (worst == cells_.size() ||
            cells_[c].uncovered > cells_[worst].uncovered) {
          worst = c;
        }
      }
      if (worst == cells_.size()) break;  // all beliefs satisfied: done
      const geom::Point2 center = partition_.rect_of(worst).center();
      double best_d = 0.0;
      geom::Point2 pos{};
      bool found = false;
      for (std::uint32_t pid : cells_[worst].point_ids) {
        const auto p = field_.map.index().point(pid);
        const double d2 = geom::distance_sq(p, center);
        if (!found || d2 < best_d) {
          best_d = d2;
          pos = p;
          found = true;
        }
      }
      DECOR_ASSERT(found);
      decisions.push_back(Decision{worst, pos, true});
      ++result.messages;
    }

    ++result.rounds;
    // Randomize application order within the round; placements are
    // simultaneous, the shuffle only de-biases the placement trace.
    rng_.shuffle(decisions);
    for (const auto& d : decisions) {
      if (result.placed_nodes >= limits_.max_new_nodes) break;
      apply(d, result);
    }
  }

  result.reached_full_coverage = field_.map.fully_covered(k_);
  return result;
}

}  // namespace

DeploymentResult grid_decor(Field& field, common::Rng& rng,
                            EngineLimits limits) {
  return GridEngine(field, rng, limits).run();
}

}  // namespace decor::core
