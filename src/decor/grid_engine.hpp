// Grid-based DECOR (Section 3, grid scheme).
//
// The field is partitioned into fixed square cells, each run by an elected
// leader. A leader only knows (a) the sensors inside its own cell — the
// paper assumes intra-cell connectivity — and (b) the new placements that
// neighboring leaders notify it about when a deployed disc crosses the
// boundary. Every leader runs Algorithm 1 on its own cell's approximation
// points concurrently with all others; this engine emulates that
// concurrency with synchronous rounds: all leaders decide on the
// round-start knowledge, then all placements and notifications apply at
// once. Cross-boundary races and coverage hidden in neighboring cells are
// exactly what produces the redundant nodes the paper measures.
//
// Cells that contain points but no sensor are seeded by an adjacent
// leader ("the leader of a neighboring cell will place a new leader in the
// uncovered cell"); a fully sensor-less field falls back to seeding the
// worst cell directly (the paper's regular-positioning fallback).
//
// Message accounting (Figure 10): one election bid per member plus one
// leader announcement per occupied cell, one notification per affected
// neighboring leader per placement, one message per seeding directive, and
// one neighbor-state query per adjacent leader when a seeded leader boots.
#pragma once

#include "common/rng.hpp"
#include "decor/deployment.hpp"
#include "decor/point_field.hpp"

namespace decor::core {

DeploymentResult grid_decor(Field& field, common::Rng& rng,
                            EngineLimits limits = {});

}  // namespace decor::core
