// Schema-classified discovery of run-directory artifacts.
//
// Every consumer that interprets a finished run — `decor report html`,
// `decor watch` replay, `decor explain` — used to walk the directory
// itself and sniff each file's first line. This helper is the single
// copy of that logic: it discovers files in sorted relative-path order
// (directory iteration order is filesystem-dependent; every consumer's
// byte-determinism contract depends on the sort), classifies each by its
// schema header or record shape, and parses the lines once.
//
// Raw line text is retained alongside the parsed records so replay-style
// consumers (the dashboard ingests verbatim JSONL lines) and tree-style
// consumers (the report walks parsed values) share one loader.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace decor::core {

/// One artifact file, classified by its first line: a "schema" member
/// names the JSONL dialect; trace dumps (which carry no header) are
/// recognized by their seq/kind record shape; whole-file JSON documents
/// (manifest.json, metrics.json) are parsed in one piece.
struct Artifact {
  std::string rel;   ///< path relative to the scanned dir, generic form
  /// "field", "timeline", "audit", "metrics-stream" (decor.metrics.v1
  /// snapshots), "trace", "manifest", "metrics" (metrics.json document),
  /// or "other".
  std::string kind;
  common::JsonValue header;  ///< schema line, or the whole document
  std::string header_line;   ///< raw schema line text ("" when none)
  std::vector<common::JsonValue> records;  ///< parsed data lines, file order
  std::vector<std::string> lines;  ///< raw text of `records`, same order
  std::size_t malformed = 0;       ///< unparseable lines, skipped
};

/// Artifacts that cannot contribute anything to a consumer: a file with
/// zero parsed records (sinks that opened but never flushed a line, or
/// files truncated down to nothing) or one that did not parse at all.
/// Counted warnings, per the report convention — never hard failures.
struct ArtifactWarning {
  std::string rel;
  std::string reason;
};

/// Loads every recognized artifact under `dir` (recursively, so flight
/// bundles nested in a run directory are included): *.jsonl files plus
/// manifest.json / metrics.json documents. Throws common::RequireError
/// when `dir` is not a readable directory (`context` prefixes the
/// message, e.g. "report"); unreadable or malformed lines are skipped
/// and counted per artifact.
std::vector<Artifact> load_run_artifacts(const std::string& dir,
                                         const std::string& context);

/// The counted warnings for a loaded artifact set (empty, truncated or
/// unparseable files).
std::vector<ArtifactWarning> collect_artifact_warnings(
    const std::vector<Artifact>& artifacts);

}  // namespace decor::core
