#include "decor/restoration.hpp"

#include <algorithm>
#include <cmath>

namespace decor::core {

DeploymentResult deploy_full(Scheme scheme, Field& field, common::Rng& rng,
                             EngineLimits limits) {
  return run_engine(scheme, field, rng, std::move(limits));
}

std::vector<std::uint32_t> fail_random_fraction(Field& field, double fraction,
                                                common::Rng& rng) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  auto alive = field.sensors.alive_ids();
  const auto count = static_cast<std::size_t>(
      std::llround(f * static_cast<double>(alive.size())));
  const auto picks = rng.sample_indices(alive.size(), count);
  std::vector<std::uint32_t> killed;
  killed.reserve(count);
  for (std::size_t idx : picks) {
    field.fail(alive[idx]);
    killed.push_back(alive[idx]);
  }
  return killed;
}

std::vector<std::uint32_t> fail_area(Field& field, const geom::Disc& area) {
  std::vector<std::uint32_t> killed;
  for (const auto& s : field.sensors.all()) {
    if (s.alive && area.contains(s.pos)) killed.push_back(s.id);
  }
  for (std::uint32_t id : killed) field.fail(id);
  return killed;
}

double max_tolerable_failure_fraction(const Field& field, double min_coverage,
                                      common::Rng& rng) {
  Field scratch = field;  // counts + sensor records copy; the point index
                          // is shared and immutable
  auto alive = scratch.sensors.alive_ids();
  if (alive.empty()) return 0.0;
  rng.shuffle(alive);
  const auto total = static_cast<double>(alive.size());
  // 1-coverage only decreases as nodes die, so the first crossing is the
  // answer.
  std::size_t killed = 0;
  for (std::uint32_t id : alive) {
    scratch.fail(id);
    ++killed;
    if (scratch.map.fraction_covered(1) < min_coverage) {
      return static_cast<double>(killed - 1) / total;
    }
  }
  return 1.0;
}

RestorationOutcome restore_after_area_failure(Scheme scheme, Field& field,
                                              const geom::Disc& area,
                                              common::Rng& rng,
                                              EngineLimits limits) {
  RestorationOutcome out;
  out.failed = fail_area(field, area);
  out.post_failure = coverage::compute_metrics(field.map, field.params.k + 1);
  out.restoration = run_engine(scheme, field, rng, std::move(limits));
  return out;
}

}  // namespace decor::core
