#include "decor/restoration.hpp"

#include <algorithm>
#include <cmath>

namespace decor::core {

DeploymentResult deploy_full(Scheme scheme, Field& field, common::Rng& rng,
                             EngineLimits limits) {
  return run_engine(scheme, field, rng, std::move(limits));
}

std::vector<std::uint32_t> fail_random_fraction(Field& field, double fraction,
                                                common::Rng& rng) {
  const double f = std::clamp(fraction, 0.0, 1.0);
  auto alive = field.sensors.alive_ids();
  const auto count = static_cast<std::size_t>(
      std::llround(f * static_cast<double>(alive.size())));
  const auto picks = rng.sample_indices(alive.size(), count);
  std::vector<std::uint32_t> killed;
  killed.reserve(count);
  for (std::size_t idx : picks) {
    field.fail(alive[idx]);
    killed.push_back(alive[idx]);
  }
  return killed;
}

std::vector<std::uint32_t> fail_area(Field& field, const geom::Disc& area) {
  std::vector<std::uint32_t> killed;
  field.sensors.for_each([&](const coverage::Sensor& s) {
    if (s.alive && area.contains(s.pos)) killed.push_back(s.id);
  });
  for (std::uint32_t id : killed) field.fail(id);
  return killed;
}

double max_tolerable_failure_fraction(Field& field, double min_coverage,
                                      common::Rng& rng) {
  auto alive = field.sensors.alive_ids();
  if (alive.empty()) return 0.0;
  rng.shuffle(alive);
  const auto total = static_cast<double>(alive.size());
  const auto num_points = static_cast<double>(field.map.num_points());

  // Track the 1-covered count incrementally: killing one sensor uncovers
  // exactly the in-disc points whose count is about to drop from 1 to 0,
  // so each step costs one disc sweep instead of a full O(points) scan.
  std::size_t covered1 = field.map.num_covered(1);

  // The what-if runs on the field itself and is rolled back afterwards by
  // re-adding the killed sensors' discs — no deep copy of the counts and
  // sensor records per call.
  std::vector<std::uint32_t> killed;
  killed.reserve(alive.size());
  const auto undo = [&] {
    for (auto it = killed.rbegin(); it != killed.rend(); ++it) {
      field.revive(*it);
    }
  };

  // 1-coverage only decreases as nodes die, so the first crossing is the
  // answer.
  for (std::uint32_t id : alive) {
    const auto& s = field.sensors.sensor(id);
    const double rs = s.rs > 0.0 ? s.rs : field.params.rs;
    std::size_t uncovers = 0;
    field.map.index().for_each_in_disc(s.pos, rs, [&](std::size_t pid) {
      if (field.map.kp(pid) == 1) ++uncovers;
    });
    field.fail(id);
    killed.push_back(id);
    covered1 -= uncovers;
    const double fraction = num_points == 0.0
                                ? 1.0
                                : static_cast<double>(covered1) / num_points;
    if (fraction < min_coverage) {
      const auto tolerated = static_cast<double>(killed.size() - 1) / total;
      undo();
      return tolerated;
    }
  }
  undo();
  return 1.0;
}

RestorationOutcome restore_after_area_failure(Scheme scheme, Field& field,
                                              const geom::Disc& area,
                                              common::Rng& rng,
                                              EngineLimits limits) {
  RestorationOutcome out;
  out.failed = fail_area(field, area);
  out.post_failure = coverage::compute_metrics(field.map, field.params.k + 1);
  out.restoration = run_engine(scheme, field, rng, std::move(limits));
  return out;
}

}  // namespace decor::core
