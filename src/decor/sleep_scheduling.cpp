#include "decor/sleep_scheduling.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace decor::core {

EpochPlan plan_epoch(const Field& field, const std::vector<double>& energy,
                     const SleepScheduleParams& params) {
  DECOR_REQUIRE_MSG(params.cover_k >= 1, "cover_k must be >= 1");
  EpochPlan plan;
  const auto& index = field.map.index();

  // Remaining deficit per point: how many more awake coverers it needs.
  std::vector<std::uint32_t> deficit(index.size(), params.cover_k);
  std::size_t total_deficit = params.cover_k * index.size();

  // Points no alive sensor can reach make the epoch infeasible; detect
  // that up front from the ground-truth counts.
  for (std::size_t pid = 0; pid < index.size(); ++pid) {
    if (field.map.kp(pid) < params.cover_k) return plan;  // infeasible
  }

  // Greedy cover, energy-rich sensors first so the duty rotates.
  auto ids = field.sensors.alive_ids();
  std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
    const double ea = a < energy.size() ? energy[a] : 0.0;
    const double eb = b < energy.size() ? energy[b] : 0.0;
    if (ea != eb) return ea > eb;
    return a < b;
  });
  for (std::uint32_t id : ids) {
    if (total_deficit == 0) break;
    const auto& s = field.sensors.sensor(id);
    const double rs = s.rs > 0.0 ? s.rs : field.params.rs;
    bool useful = false;
    index.for_each_in_disc(s.pos, rs, [&](std::size_t pid) {
      if (deficit[pid] > 0) useful = true;
    });
    if (!useful) continue;
    plan.awake.push_back(id);
    index.for_each_in_disc(s.pos, rs, [&](std::size_t pid) {
      if (deficit[pid] > 0) {
        --deficit[pid];
        --total_deficit;
      }
    });
  }
  plan.feasible = (total_deficit == 0);
  if (!plan.feasible) plan.awake.clear();
  return plan;
}

LifetimeResult simulate_lifetime(Field& field, double battery_capacity,
                                 std::size_t max_epochs,
                                 const SleepScheduleParams& params) {
  DECOR_REQUIRE_MSG(battery_capacity > 0.0, "battery must be positive");
  LifetimeResult result;
  std::vector<double> energy(field.sensors.size(), battery_capacity);
  double awake_sum = 0.0;
  while (result.epochs < max_epochs) {
    const auto plan = plan_epoch(field, energy, params);
    if (!plan.feasible) break;
    awake_sum += static_cast<double>(plan.awake.size());
    for (std::uint32_t id : plan.awake) {
      if ((energy[id] -= params.awake_cost) <= 0.0) field.fail(id);
    }
    ++result.epochs;
  }
  result.hit_epoch_limit = (result.epochs == max_epochs);
  result.mean_awake =
      result.epochs == 0 ? 0.0
                         : awake_sum / static_cast<double>(result.epochs);
  return result;
}

}  // namespace decor::core
