// Voronoi-based DECOR (Section 3, Voronoi scheme).
//
// Every node owns its local Voronoi cell: the approximation points within
// communication radius rc that lie closer to it than to any other node
// (Definition 1; ties break to the lower id). Because rs <= rc a node
// hears every sensor that can cover its points, so — as the paper argues —
// its coverage estimate for owned points is exact. Each round, every node
// with an uncovered owned point places a new sensor at its max-benefit
// owned point (benefit evaluated over its own points only); placements are
// simultaneous, so two adjacent owners can race on boundary coverage,
// which is the scheme's source of redundant nodes. New nodes immediately
// own territory of their own, growing the deployed frontier into
// previously unowned area.
//
// Points farther than rc from every node are owned by nobody; when only
// such points remain uncovered the engine falls back to the paper's
// deployment assumption (a human/robot carries a starter node to the
// frontier) and seeds the nearest such point.
//
// Message accounting (Figure 10): upon each placement the placing node
// informs its current rc-neighborhood (one message per neighbor), matching
// the paper's "the number of messages needed to be sent by a node upon
// placement is analogous to the communication radius rc".
#pragma once

#include "common/rng.hpp"
#include "decor/deployment.hpp"
#include "decor/point_field.hpp"

namespace decor::core {

DeploymentResult voronoi_decor(Field& field, common::Rng& rng,
                               EngineLimits limits = {});

}  // namespace decor::core
