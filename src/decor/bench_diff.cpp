#include "decor/bench_diff.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace decor::core {

namespace {

struct FlatMetric {
  std::string id;
  double mean = 0.0;
};

/// Flattens tables -> rows -> cells into "<table>[<x_name>=<x>].<series>"
/// ids, preserving document order so the diff reads like the source.
std::vector<FlatMetric> flatten(const common::JsonValue& doc) {
  std::vector<FlatMetric> out;
  const auto* tables = doc.find("tables");
  if (tables == nullptr) return out;
  for (const auto& [table_name, table] : tables->members()) {
    const auto* x_name_v = table.find("x_name");
    const std::string x_name =
        x_name_v != nullptr ? x_name_v->as_string("x") : "x";
    const auto* rows = table.find("rows");
    if (rows == nullptr) continue;
    for (const auto& row : rows->items()) {
      const auto* x = row.find("x");
      const std::string x_s =
          x != nullptr ? common::format_double(x->as_number()) : "?";
      const auto* cells = row.find("cells");
      if (cells == nullptr) continue;
      for (const auto& [series, cell] : cells->members()) {
        const auto* mean = cell.find("mean");
        if (mean == nullptr || !mean->is_number()) continue;
        out.push_back({table_name + "[" + x_name + "=" + x_s + "]." + series,
                       mean->as_number()});
      }
    }
  }
  return out;
}

bool is_bench_doc(const common::JsonValue& doc) {
  const auto* schema = doc.find("schema");
  return schema != nullptr && schema->as_string() == "decor.bench.v1" &&
         doc.find("tables") != nullptr;
}

}  // namespace

double BenchDiffResult::max_abs_delta_pct() const noexcept {
  double worst = 0.0;
  for (const auto& e : entries) {
    worst = std::max(worst, std::abs(e.delta_pct));
  }
  return worst;
}

bool BenchDiffResult::exceeds(double pct) const noexcept {
  for (const auto& e : entries) {
    if (std::abs(e.delta_pct) > pct) return true;
  }
  return false;
}

std::optional<BenchDiffResult> bench_diff(const common::JsonValue& a,
                                          const common::JsonValue& b) {
  if (!is_bench_doc(a) || !is_bench_doc(b)) return std::nullopt;
  const auto flat_a = flatten(a);
  const auto flat_b = flatten(b);

  BenchDiffResult result;
  std::vector<char> matched_b(flat_b.size(), 0);
  for (const auto& ma : flat_a) {
    // Linear probe: bench documents hold tens of metrics, and a scan
    // keeps B's duplicates (if any) matched one-to-one in order.
    std::size_t hit = flat_b.size();
    for (std::size_t i = 0; i < flat_b.size(); ++i) {
      if (matched_b[i] == 0 && flat_b[i].id == ma.id) {
        hit = i;
        break;
      }
    }
    if (hit == flat_b.size()) {
      result.only_a.push_back(ma.id);
      continue;
    }
    matched_b[hit] = 1;
    BenchDiffEntry e;
    e.metric = ma.id;
    e.a = ma.mean;
    e.b = flat_b[hit].mean;
    if (e.a == e.b) {
      e.delta_pct = 0.0;
    } else if (e.a == 0.0) {
      e.delta_pct = e.b > 0.0 ? std::numeric_limits<double>::infinity()
                              : -std::numeric_limits<double>::infinity();
    } else {
      e.delta_pct = (e.b - e.a) / std::abs(e.a) * 100.0;
    }
    result.entries.push_back(std::move(e));
  }
  for (std::size_t i = 0; i < flat_b.size(); ++i) {
    if (matched_b[i] == 0) result.only_b.push_back(flat_b[i].id);
  }
  return result;
}

}  // namespace decor::core
