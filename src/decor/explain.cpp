#include "decor/explain.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "net/messages.hpp"
#include "sim/trace_export.hpp"

namespace decor::core {

namespace {

using common::JsonValue;

double num_at(const JsonValue& obj, std::string_view key, double def = 0.0) {
  const auto* v = obj.find(key);
  return v != nullptr ? v->as_number(def) : def;
}

std::uint64_t u64_at(const JsonValue& obj, std::string_view key) {
  return static_cast<std::uint64_t>(num_at(obj, key));
}

std::string str_at(const JsonValue& obj, std::string_view key) {
  const auto* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

/// `from=N` sender in an rx/drop detail string, or -1 when absent.
std::int64_t parse_detail_from(std::string_view detail) {
  const auto pos = detail.find("from=");
  if (pos == std::string_view::npos) return -1;
  std::int64_t v = 0;
  bool any = false;
  for (std::size_t i = pos + 5; i < detail.size(); ++i) {
    const char c = detail[i];
    if (c < '0' || c > '9') break;
    v = v * 10 + (c - '0');
    any = true;
  }
  return any ? v : -1;
}

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Lebesgue measure of the union of [lo, hi] intervals.
double union_measure(std::vector<std::pair<double, double>> ivals) {
  std::sort(ivals.begin(), ivals.end());
  double total = 0.0;
  double cur_lo = 0.0, cur_hi = -1.0;
  bool open = false;
  for (const auto& [lo, hi] : ivals) {
    if (hi <= lo) continue;
    if (!open || lo > cur_hi) {
      if (open) total += cur_hi - cur_lo;
      cur_lo = lo;
      cur_hi = hi;
      open = true;
    } else {
      cur_hi = std::max(cur_hi, hi);
    }
  }
  if (open) total += cur_hi - cur_lo;
  return total;
}

/// Everything the trace pass accumulates for one causality id.
struct SpanAgg {
  double first_t = 0.0;
  double last_t = 0.0;
  std::uint32_t origin = 0;
  bool have_origin = false;
  bool started = false;
  std::uint64_t retransmits = 0;
  /// Last tx time per transmitting node (the rx side joins against the
  /// sender's most recent send to measure per-link latency).
  std::map<std::uint32_t, double> last_tx;
};

struct NodeAgg {
  std::uint64_t tx = 0;
  std::uint64_t retx = 0;
  std::uint64_t drops = 0;
  std::uint64_t dead_peers = 0;
  std::uint64_t origin_sends = 0;
  std::vector<double> exchange_latencies;
};

struct LinkAgg {
  std::uint64_t delivered = 0;
  std::uint64_t crc_drops = 0;
  std::vector<double> latencies;
};

}  // namespace

ExplainDoc analyze_run(const std::vector<Artifact>& artifacts,
                       const ExplainOptions& opts) {
  ExplainDoc doc;
  const Artifact* timeline = nullptr;
  const Artifact* field = nullptr;
  const Artifact* audit = nullptr;
  const Artifact* trace = nullptr;
  for (const auto& a : artifacts) {
    if (a.kind == "timeline" && timeline == nullptr) timeline = &a;
    if (a.kind == "field" && field == nullptr) field = &a;
    if (a.kind == "audit" && audit == nullptr) audit = &a;
    if (a.kind == "trace" && trace == nullptr) trace = &a;
  }

  // --- convergence instant and sampling cadence --------------------------
  double max_t = 0.0;
  if (timeline != nullptr) {
    doc.timeline_samples = timeline->records.size();
    std::vector<double> diffs;
    double prev_t = 0.0;
    bool have_prev = false;
    for (const auto& s : timeline->records) {
      const double t = num_at(s, "t");
      max_t = std::max(max_t, t);
      if (have_prev && t > prev_t) diffs.push_back(t - prev_t);
      prev_t = t;
      have_prev = true;
      if (doc.convergence_time < 0.0 && num_at(s, "uncovered", 1.0) == 0.0) {
        doc.convergence_time = t;
        doc.converged = true;
      }
    }
    doc.sample_cadence = median_of(std::move(diffs));
  } else {
    doc.warnings.push_back("no decor.timeline.v1 artifact");
  }
  if (trace != nullptr) {
    doc.trace_records = trace->records.size();
    for (const auto& r : trace->records) {
      const double t = num_at(r, "t");
      max_t = std::max(max_t, t);
      if (!doc.converged && str_at(r, "kind") == "protocol" &&
          str_at(r, "detail") == "converged") {
        doc.convergence_time = t;
        doc.converged = true;
      }
    }
  } else {
    doc.warnings.push_back("no trace artifact");
  }
  if (!doc.converged) {
    doc.warnings.push_back(
        "run never converged within the artifacts; phases attributed over "
        "the observed horizon");
  }
  // The attribution horizon: the convergence instant, or everything the
  // artifacts observed when the run never converged.
  const double horizon = doc.converged ? doc.convergence_time : max_t;

  // --- closing placement (audit walk) ------------------------------------
  std::uint64_t audits_without_trace_id = 0;
  double first_audit_t = -1.0;
  if (audit != nullptr && !audit->records.empty()) {
    doc.audit_records = audit->records.size();
    const JsonValue* sat = nullptr;   // latest with newly_satisfied > 0
    const JsonValue* last = nullptr;  // latest before the horizon at all
    for (const auto& r : audit->records) {
      const double t = num_at(r, "t");
      if (first_audit_t < 0.0) first_audit_t = t;
      if (u64_at(r, "trace_id") == 0) ++audits_without_trace_id;
      if (t > horizon + doc.sample_cadence) continue;
      last = &r;  // file order is time order: keep the latest
      if (u64_at(r, "newly_satisfied") > 0) sat = &r;
    }
    // Prefer the newly-satisfied key, but only while the audit trail
    // keeps recording it: seed bootstraps log newly_satisfied=0 even
    // when they close the final hole, so a satisfied-keyed pick that
    // predates the last pre-horizon decision by more than one cadence
    // is stale — coverage was still open after it fired.
    const JsonValue* closing = sat;
    if (closing != nullptr && last != nullptr &&
        num_at(*closing, "t") + doc.sample_cadence < num_at(*last, "t")) {
      doc.warnings.push_back(
          "audit trail stops recording newly-satisfied points before "
          "convergence; using the last pre-convergence decision");
      closing = last;
    }
    if (closing == nullptr) {
      if (last != nullptr) {
        doc.warnings.push_back(
            "no audit record newly satisfied points; using the last "
            "pre-convergence decision");
        closing = last;
      } else {
        doc.warnings.push_back(
            "no audit record newly satisfied points; using the last "
            "decision");
        closing = &audit->records.back();
      }
    }
    doc.closing_placement.present = true;
    doc.closing_placement.t = num_at(*closing, "t");
    doc.closing_placement.actor =
        static_cast<std::uint32_t>(num_at(*closing, "actor"));
    doc.closing_placement.reason = str_at(*closing, "reason");
    doc.closing_placement.x = num_at(*closing, "x");
    doc.closing_placement.y = num_at(*closing, "y");
    doc.closing_placement.benefit = num_at(*closing, "benefit");
    doc.closing_placement.newly_satisfied = u64_at(*closing, "newly_satisfied");
    doc.closing_placement.trace_id = u64_at(*closing, "trace_id");
  } else {
    doc.warnings.push_back("no decor.audit.v1 artifact");
  }
  if (audits_without_trace_id > 0) {
    doc.warnings.push_back(std::to_string(audits_without_trace_id) +
                           " audit record" +
                           (audits_without_trace_id == 1 ? "" : "s") +
                           " carry no causality id");
  }

  // --- last hole to close (field walk) ------------------------------------
  if (field != nullptr && !field->records.empty()) {
    const JsonValue* last_open = nullptr;
    for (const auto& s : field->records) {
      if (num_at(s, "t") > horizon + doc.sample_cadence) break;
      if (num_at(s, "uncovered") > 0.0) last_open = &s;
    }
    const auto* holes =
        last_open != nullptr ? last_open->find("holes") : nullptr;
    if (holes != nullptr && !holes->items().empty()) {
      // The hole the closing placement filled: nearest centroid to the
      // placement position (first hole when no placement is known —
      // hole extraction order is deterministic).
      const JsonValue* best = &holes->items().front();
      if (doc.closing_placement.present) {
        double best_d = 0.0;
        bool first = true;
        for (const auto& h : holes->items()) {
          const double dx = num_at(h, "cx") - doc.closing_placement.x;
          const double dy = num_at(h, "cy") - doc.closing_placement.y;
          const double d2 = dx * dx + dy * dy;
          if (first || d2 < best_d) {
            best_d = d2;
            best = &h;
            first = false;
          }
        }
      }
      doc.last_hole.present = true;
      doc.last_hole.t = num_at(*last_open, "t");
      doc.last_hole.points = u64_at(*best, "points");
      doc.last_hole.area = num_at(*best, "area");
      doc.last_hole.cx = num_at(*best, "cx");
      doc.last_hole.cy = num_at(*best, "cy");
      doc.last_hole.max_deficit =
          static_cast<std::uint32_t>(num_at(*best, "max_deficit"));
    } else if (last_open != nullptr) {
      doc.warnings.push_back(
          "last uncovered field snapshot records no hole inventory");
    } else {
      doc.warnings.push_back("field snapshots never show an open hole");
    }
  } else {
    doc.warnings.push_back("no decor.field.v1 artifact");
  }

  // --- trace pass: spans, node stats, link stats --------------------------
  std::map<std::uint64_t, SpanAgg> spans;
  std::map<std::uint32_t, NodeAgg> nodes;
  std::map<std::pair<std::uint32_t, std::uint32_t>, LinkAgg> links;
  if (trace != nullptr) {
    for (const auto& r : trace->records) {
      const std::string kind = str_at(r, "kind");
      const double t = num_at(r, "t");
      const auto node = static_cast<std::uint32_t>(num_at(r, "node"));
      const std::string detail = str_at(r, "detail");
      if (kind == "protocol") {
        if (detail.rfind("dead-peer=", 0) == 0) ++nodes[node].dead_peers;
        continue;
      }
      const auto tid = u64_at(r, "trace");
      SpanAgg* span = nullptr;
      if (tid != 0) {
        span = &spans[tid];
        if (!span->started) {
          span->started = true;
          span->first_t = t;
          span->last_t = t;
        }
        span->last_t = std::max(span->last_t, t);
      }
      if (kind == "tx") {
        ++nodes[node].tx;
        if (span != nullptr) {
          if (!span->have_origin) {
            span->have_origin = true;
            span->origin = node;
            ++nodes[node].origin_sends;
          } else if (node == span->origin &&
                     sim::parse_detail_kind(detail) != net::kAck) {
            ++span->retransmits;
            ++nodes[node].retx;
          }
          span->last_tx[node] = t;
        }
      } else if (kind == "rx") {
        const std::int64_t from = parse_detail_from(detail);
        if (from >= 0) {
          auto& link = links[{static_cast<std::uint32_t>(from), node}];
          ++link.delivered;
          if (span != nullptr) {
            const auto it =
                span->last_tx.find(static_cast<std::uint32_t>(from));
            if (it != span->last_tx.end() && t >= it->second) {
              link.latencies.push_back(t - it->second);
            }
          }
        }
      } else if (kind == "drop") {
        ++nodes[node].drops;
        if (detail.rfind("crc", 0) == 0) {
          const std::int64_t from = parse_detail_from(detail);
          if (from >= 0) {
            ++links[{static_cast<std::uint32_t>(from), node}].crc_drops;
          }
        }
      }
    }
  }

  // --- phase attribution ---------------------------------------------------
  std::uint64_t audited_missing_trace = 0;
  if (horizon > 0.0) {
    if (first_audit_t < 0.0) {
      // Nothing was ever decided: the whole horizon is detection (or,
      // for never-converged runs, undiagnosed waiting).
      doc.detection = horizon;
    } else {
      doc.detection = std::min(first_audit_t, horizon);
      std::vector<std::pair<double, double>> in_flight;
      if (audit != nullptr) {
        for (const auto& r : audit->records) {
          const auto tid = u64_at(r, "trace_id");
          if (tid == 0) continue;
          const auto it = spans.find(tid);
          if (it == spans.end()) {
            ++audited_missing_trace;
            continue;
          }
          ++doc.audited_exchanges;
          const double lo = std::max(it->second.first_t, doc.detection);
          const double hi = std::min(it->second.last_t, horizon);
          if (hi > lo) in_flight.emplace_back(lo, hi);
        }
      }
      doc.propagation = union_measure(std::move(in_flight));
      doc.decision =
          std::max(0.0, horizon - doc.detection - doc.propagation);
    }
  }
  if (audited_missing_trace > 0) {
    doc.warnings.push_back(
        std::to_string(audited_missing_trace) + " audited placement" +
        (audited_missing_trace == 1 ? "" : "s") +
        " have no trace records (ring truncated or tracing disabled)");
  }

  // --- the critical exchange ----------------------------------------------
  if (doc.closing_placement.present) {
    if (doc.closing_placement.trace_id == 0) {
      doc.warnings.push_back(
          "closing placement carries no causality id (trace_id=0)");
    } else if (trace == nullptr) {
      // Already warned about the missing trace artifact.
    } else {
      auto& ex = doc.exchange;
      ex.trace_id = doc.closing_placement.trace_id;
      bool have_origin = false;
      std::uint32_t origin = 0;
      double last_retx_t = 0.0;
      for (const auto& r : trace->records) {
        if (u64_at(r, "trace") != ex.trace_id) continue;
        const std::string kind = str_at(r, "kind");
        const double t = num_at(r, "t");
        const auto node = static_cast<std::uint32_t>(num_at(r, "node"));
        const std::string detail = str_at(r, "detail");
        if (!ex.present) {
          ex.present = true;
          ex.first_t = t;
          ex.last_t = t;
        }
        ex.last_t = std::max(ex.last_t, t);
        ExplainLeg leg;
        leg.t = t;
        leg.dt = t - ex.first_t;
        leg.node = node;
        if (kind == "tx") {
          const bool is_ack = sim::parse_detail_kind(detail) == net::kAck;
          if (!have_origin) {
            have_origin = true;
            origin = node;
            leg.leg = "send";
          } else if (is_ack) {
            leg.leg = "ack";
            ex.completed = true;
          } else if (node == origin) {
            leg.leg = "retransmit";
            ++ex.retransmits;
            last_retx_t = t;
          } else {
            leg.leg = "forward";
          }
        } else if (kind == "rx") {
          leg.leg = sim::parse_detail_kind(detail) == net::kAck ? "ack-rx"
                                                                : "rx";
          leg.from = parse_detail_from(detail);
          if (leg.leg == "ack-rx") ex.completed = true;
        } else if (kind == "drop") {
          leg.leg = "drop";
          leg.from = parse_detail_from(detail);
        } else {
          continue;
        }
        ex.legs.push_back(std::move(leg));
      }
      ex.origin = origin;
      if (ex.retransmits > 0) ex.retx_delay = last_retx_t - ex.first_t;
      if (!ex.present) {
        doc.warnings.push_back(
            "closing placement exchange not in the trace (ring truncated?)");
      } else if (!ex.completed) {
        doc.warnings.push_back(
            "closing placement exchange never completed (no ack leg)");
      }
    }
  }

  // --- health scores -------------------------------------------------------
  {
    std::vector<double> fleet_ex;
    for (auto& [tid, s] : spans) {
      if (!s.have_origin) continue;
      const double d = s.last_t - s.first_t;
      nodes[s.origin].exchange_latencies.push_back(d);
      fleet_ex.push_back(d);
    }
    doc.fleet_median_exchange_latency = median_of(std::move(fleet_ex));
    std::vector<double> fleet_link;
    for (const auto& [key, l] : links) {
      fleet_link.insert(fleet_link.end(), l.latencies.begin(),
                        l.latencies.end());
    }
    doc.fleet_median_link_latency = median_of(std::move(fleet_link));

    for (auto& [id, n] : nodes) {
      ExplainNodeHealth h;
      h.node = id;
      h.tx = n.tx;
      h.retx = n.retx;
      h.drops = n.drops;
      h.dead_peer_events = n.dead_peers;
      h.retx_ratio = static_cast<double>(n.retx) /
                     static_cast<double>(std::max<std::uint64_t>(
                         n.origin_sends, 1));
      const double med = median_of(std::move(n.exchange_latencies));
      h.latency_inflation = doc.fleet_median_exchange_latency > 0.0
                                ? med / doc.fleet_median_exchange_latency
                                : 0.0;
      // Worst-offender score: every term is a "how much worse than a
      // healthy node" excess — retransmissions per originating send,
      // latency beyond the fleet median, and dead-peer declarations.
      h.score = h.retx_ratio + std::max(0.0, h.latency_inflation - 1.0) +
                0.5 * static_cast<double>(h.dead_peer_events);
      doc.nodes.push_back(h);
    }
    std::sort(doc.nodes.begin(), doc.nodes.end(),
              [](const ExplainNodeHealth& a, const ExplainNodeHealth& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.node < b.node;
              });
    if (doc.nodes.size() > opts.top_n) doc.nodes.resize(opts.top_n);

    for (auto& [key, l] : links) {
      ExplainLinkHealth h;
      h.src = key.first;
      h.dst = key.second;
      h.delivered = l.delivered;
      h.crc_drops = l.crc_drops;
      h.median_latency = median_of(std::move(l.latencies));
      h.latency_inflation = doc.fleet_median_link_latency > 0.0
                                ? h.median_latency /
                                      doc.fleet_median_link_latency
                                : 0.0;
      h.score = std::max(0.0, h.latency_inflation - 1.0) +
                0.25 * static_cast<double>(h.crc_drops);
      doc.links.push_back(h);
    }
    std::sort(doc.links.begin(), doc.links.end(),
              [](const ExplainLinkHealth& a, const ExplainLinkHealth& b) {
                if (a.score != b.score) return a.score > b.score;
                if (a.src != b.src) return a.src < b.src;
                return a.dst < b.dst;
              });
    if (doc.links.size() > opts.top_n) doc.links.resize(opts.top_n);
  }
  return doc;
}

ExplainDoc explain_run_dir(const std::string& dir,
                           const ExplainOptions& opts) {
  return analyze_run(load_run_artifacts(dir, "explain"), opts);
}

// --- serialization ---------------------------------------------------------

namespace {

void write_hole(common::JsonWriter& w, const ExplainHole& h) {
  if (!h.present) {
    w.null_value();
    return;
  }
  w.begin_object();
  w.key("t");
  w.value(h.t);
  w.key("points");
  w.value(h.points);
  w.key("area");
  w.value(h.area);
  w.key("cx");
  w.value(h.cx);
  w.key("cy");
  w.value(h.cy);
  w.key("max_deficit");
  w.value(static_cast<std::uint64_t>(h.max_deficit));
  w.end_object();
}

void write_placement(common::JsonWriter& w, const ExplainPlacement& p) {
  if (!p.present) {
    w.null_value();
    return;
  }
  w.begin_object();
  w.key("t");
  w.value(p.t);
  w.key("actor");
  w.value(static_cast<std::uint64_t>(p.actor));
  w.key("reason");
  w.value(p.reason);
  w.key("x");
  w.value(p.x);
  w.key("y");
  w.value(p.y);
  w.key("benefit");
  w.value(p.benefit);
  w.key("newly_satisfied");
  w.value(p.newly_satisfied);
  w.key("trace_id");
  w.value(p.trace_id);
  w.end_object();
}

void write_exchange(common::JsonWriter& w, const ExplainExchange& e) {
  if (!e.present) {
    w.null_value();
    return;
  }
  w.begin_object();
  w.key("trace_id");
  w.value(e.trace_id);
  w.key("origin");
  w.value(static_cast<std::uint64_t>(e.origin));
  w.key("first_t");
  w.value(e.first_t);
  w.key("last_t");
  w.value(e.last_t);
  w.key("latency");
  w.value(e.last_t - e.first_t);
  w.key("retransmits");
  w.value(e.retransmits);
  w.key("retx_delay");
  w.value(e.retx_delay);
  w.key("completed");
  w.value(e.completed);
  w.key("legs");
  w.begin_array();
  for (const auto& leg : e.legs) {
    w.begin_object();
    w.key("t");
    w.value(leg.t);
    w.key("dt");
    w.value(leg.dt);
    w.key("leg");
    w.value(leg.leg);
    w.key("node");
    w.value(static_cast<std::uint64_t>(leg.node));
    if (leg.from >= 0) {
      w.key("from");
      w.value(static_cast<std::uint64_t>(leg.from));
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

std::string explain_to_json(const ExplainDoc& doc) {
  std::ostringstream os;
  common::JsonWriter w(os);
  w.begin_object();
  w.key("schema");
  w.value("decor.explain.v1");
  w.key("converged");
  w.value(doc.converged);
  w.key("convergence_time");
  w.value(doc.convergence_time);
  w.key("sample_cadence");
  w.value(doc.sample_cadence);
  w.key("phases");
  w.begin_object();
  w.key("detection");
  w.value(doc.detection);
  w.key("decision");
  w.value(doc.decision);
  w.key("propagation");
  w.value(doc.propagation);
  w.key("total");
  w.value(doc.detection + doc.decision + doc.propagation);
  w.end_object();
  w.key("critical_path");
  w.begin_object();
  w.key("last_hole");
  write_hole(w, doc.last_hole);
  w.key("closing_placement");
  write_placement(w, doc.closing_placement);
  w.key("exchange");
  write_exchange(w, doc.exchange);
  w.end_object();
  w.key("health");
  w.begin_object();
  w.key("fleet_median_exchange_latency");
  w.value(doc.fleet_median_exchange_latency);
  w.key("fleet_median_link_latency");
  w.value(doc.fleet_median_link_latency);
  w.key("nodes");
  w.begin_array();
  for (const auto& n : doc.nodes) {
    w.begin_object();
    w.key("node");
    w.value(static_cast<std::uint64_t>(n.node));
    w.key("tx");
    w.value(n.tx);
    w.key("retx");
    w.value(n.retx);
    w.key("drops");
    w.value(n.drops);
    w.key("dead_peer_events");
    w.value(n.dead_peer_events);
    w.key("retx_ratio");
    w.value(n.retx_ratio);
    w.key("latency_inflation");
    w.value(n.latency_inflation);
    w.key("score");
    w.value(n.score);
    w.end_object();
  }
  w.end_array();
  w.key("links");
  w.begin_array();
  for (const auto& l : doc.links) {
    w.begin_object();
    w.key("src");
    w.value(static_cast<std::uint64_t>(l.src));
    w.key("dst");
    w.value(static_cast<std::uint64_t>(l.dst));
    w.key("delivered");
    w.value(l.delivered);
    w.key("crc_drops");
    w.value(l.crc_drops);
    w.key("median_latency");
    w.value(l.median_latency);
    w.key("latency_inflation");
    w.value(l.latency_inflation);
    w.key("score");
    w.value(l.score);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.key("inputs");
  w.begin_object();
  w.key("timeline_samples");
  w.value(doc.timeline_samples);
  w.key("audit_records");
  w.value(doc.audit_records);
  w.key("audited_exchanges");
  w.value(doc.audited_exchanges);
  w.key("trace_records");
  w.value(doc.trace_records);
  w.end_object();
  w.key("warnings");
  w.begin_array();
  for (const auto& warning : doc.warnings) w.value(warning);
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

bool explain_from_json(const common::JsonValue& v, ExplainDoc& out) {
  const auto* schema = v.find("schema");
  if (schema == nullptr || schema->as_string() != "decor.explain.v1") {
    return false;
  }
  out = ExplainDoc{};
  if (const auto* c = v.find("converged")) out.converged = c->as_bool();
  out.convergence_time = num_at(v, "convergence_time", -1.0);
  out.sample_cadence = num_at(v, "sample_cadence");
  if (const auto* p = v.find("phases")) {
    out.detection = num_at(*p, "detection");
    out.decision = num_at(*p, "decision");
    out.propagation = num_at(*p, "propagation");
  }
  if (const auto* cp = v.get("critical_path", "closing_placement");
      cp != nullptr && cp->is_object()) {
    out.closing_placement.present = true;
    out.closing_placement.t = num_at(*cp, "t");
    out.closing_placement.actor =
        static_cast<std::uint32_t>(num_at(*cp, "actor"));
    out.closing_placement.reason = str_at(*cp, "reason");
    out.closing_placement.x = num_at(*cp, "x");
    out.closing_placement.y = num_at(*cp, "y");
    out.closing_placement.benefit = num_at(*cp, "benefit");
    out.closing_placement.newly_satisfied = u64_at(*cp, "newly_satisfied");
    out.closing_placement.trace_id = u64_at(*cp, "trace_id");
  }
  if (const auto* h = v.get("critical_path", "last_hole");
      h != nullptr && h->is_object()) {
    out.last_hole.present = true;
    out.last_hole.t = num_at(*h, "t");
    out.last_hole.points = u64_at(*h, "points");
    out.last_hole.area = num_at(*h, "area");
    out.last_hole.cx = num_at(*h, "cx");
    out.last_hole.cy = num_at(*h, "cy");
    out.last_hole.max_deficit = u64_at(*h, "max_deficit");
  }
  if (const auto* ex = v.get("critical_path", "exchange");
      ex != nullptr && ex->is_object()) {
    out.exchange.present = true;
    out.exchange.trace_id = u64_at(*ex, "trace_id");
    out.exchange.origin = static_cast<std::uint32_t>(num_at(*ex, "origin"));
    out.exchange.first_t = num_at(*ex, "first_t");
    out.exchange.last_t = num_at(*ex, "last_t");
    out.exchange.retransmits = u64_at(*ex, "retransmits");
    out.exchange.retx_delay = num_at(*ex, "retx_delay");
    if (const auto* c = ex->find("completed")) {
      out.exchange.completed = c->as_bool();
    }
    if (const auto* legs = ex->find("legs"); legs != nullptr) {
      for (const auto& l : legs->items()) {
        ExplainLeg leg;
        leg.t = num_at(l, "t");
        leg.dt = num_at(l, "dt");
        leg.leg = str_at(l, "leg");
        leg.node = static_cast<std::uint32_t>(num_at(l, "node"));
        leg.from = static_cast<std::int64_t>(num_at(l, "from", -1.0));
        out.exchange.legs.push_back(std::move(leg));
      }
    }
  }
  if (const auto* in = v.find("inputs")) {
    out.timeline_samples = u64_at(*in, "timeline_samples");
    out.audit_records = u64_at(*in, "audit_records");
    out.audited_exchanges = u64_at(*in, "audited_exchanges");
    out.trace_records = u64_at(*in, "trace_records");
  }
  if (const auto* h = v.find("health")) {
    out.fleet_median_exchange_latency =
        num_at(*h, "fleet_median_exchange_latency");
    out.fleet_median_link_latency = num_at(*h, "fleet_median_link_latency");
    if (const auto* nodes = h->find("nodes"); nodes != nullptr) {
      for (const auto& n : nodes->items()) {
        ExplainNodeHealth nh;
        nh.node = static_cast<std::uint32_t>(num_at(n, "node"));
        nh.tx = u64_at(n, "tx");
        nh.retx = u64_at(n, "retx");
        nh.drops = u64_at(n, "drops");
        nh.dead_peer_events = u64_at(n, "dead_peer_events");
        nh.retx_ratio = num_at(n, "retx_ratio");
        nh.latency_inflation = num_at(n, "latency_inflation");
        nh.score = num_at(n, "score");
        out.nodes.push_back(nh);
      }
    }
    if (const auto* links = h->find("links"); links != nullptr) {
      for (const auto& l : links->items()) {
        ExplainLinkHealth lh;
        lh.src = static_cast<std::uint32_t>(num_at(l, "src"));
        lh.dst = static_cast<std::uint32_t>(num_at(l, "dst"));
        lh.delivered = u64_at(l, "delivered");
        lh.crc_drops = u64_at(l, "crc_drops");
        lh.median_latency = num_at(l, "median_latency");
        lh.latency_inflation = num_at(l, "latency_inflation");
        lh.score = num_at(l, "score");
        out.links.push_back(lh);
      }
    }
  }
  if (const auto* ws = v.find("warnings"); ws != nullptr) {
    for (const auto& warning : ws->items()) {
      out.warnings.push_back(warning.as_string());
    }
  }
  return true;
}

ExplainDiff explain_diff(const ExplainDoc& a, const ExplainDoc& b,
                         std::size_t top_n) {
  ExplainDiff d;
  d.comparable = a.converged && b.converged;
  if (d.comparable) {
    d.convergence_delta = b.convergence_time - a.convergence_time;
  }
  d.detection_delta = b.detection - a.detection;
  d.decision_delta = b.decision - a.decision;
  d.propagation_delta = b.propagation - a.propagation;
  // The dominant phase is the one that *worsened* most: the culprit of
  // a regression is the phase that grew, even when another phase shrank
  // by more (time not spent propagating is spent idling in decision, so
  // the two deltas largely mirror each other). Only when no phase grew
  // (B uniformly faster) does the largest improvement get the credit.
  double best = 0.0;
  for (const auto& [name, delta] :
       {std::pair<const char*, double>{"detection", d.detection_delta},
        {"decision", d.decision_delta},
        {"propagation", d.propagation_delta}}) {
    if (delta > best) {
      best = delta;
      d.dominant_phase = name;
    }
  }
  if (best == 0.0) {
    for (const auto& [name, delta] :
         {std::pair<const char*, double>{"detection", d.detection_delta},
          {"decision", d.decision_delta},
          {"propagation", d.propagation_delta}}) {
      if (delta < best) {
        best = delta;
        d.dominant_phase = name;
      }
    }
  }

  std::map<std::uint32_t, double> node_base;
  for (const auto& n : a.nodes) node_base[n.node] = n.score;
  std::vector<ExplainNodeHealth> nodes;
  for (const auto& n : b.nodes) {
    const auto it = node_base.find(n.node);
    ExplainNodeHealth h = n;
    h.score = n.score - (it != node_base.end() ? it->second : 0.0);
    if (h.score > 0.0) nodes.push_back(h);
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const ExplainNodeHealth& x, const ExplainNodeHealth& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.node < y.node;
            });
  if (nodes.size() > top_n) nodes.resize(top_n);
  d.suspect_nodes = std::move(nodes);

  std::map<std::pair<std::uint32_t, std::uint32_t>, double> link_base;
  for (const auto& l : a.links) link_base[{l.src, l.dst}] = l.score;
  std::vector<ExplainLinkHealth> links;
  for (const auto& l : b.links) {
    const auto it = link_base.find({l.src, l.dst});
    ExplainLinkHealth h = l;
    h.score = l.score - (it != link_base.end() ? it->second : 0.0);
    if (h.score > 0.0) links.push_back(h);
  }
  std::sort(links.begin(), links.end(),
            [](const ExplainLinkHealth& x, const ExplainLinkHealth& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.src != y.src) return x.src < y.src;
              return x.dst < y.dst;
            });
  if (links.size() > top_n) links.resize(top_n);
  d.suspect_links = std::move(links);
  return d;
}

}  // namespace decor::core
