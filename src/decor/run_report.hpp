// Self-contained HTML reports rendered from run artifacts alone.
//
// `decor report html <run-dir>` turns the JSONL artifacts a run leaves
// behind — decor.field.v1 deficit snapshots, decor.timeline.v1 samples,
// decor.audit.v1 placement decisions, trace dumps and flight-recorder
// manifests — into one dependency-free HTML document: inline SVG
// heatmaps per field snapshot, coverage/ARQ timeline charts, the audit
// table and per-kind message statistics. Nothing but the artifacts is
// consulted (no live simulator state), so a report can be rendered on a
// different machine, long after the run, or from a flight bundle alone.
//
// The rendering is byte-deterministic: files are discovered in sorted
// relative-path order, all numbers go through common::format_double, and
// no timestamps or absolute paths are embedded. Identical artifacts
// produce identical bytes — `diff` on two reports diffs two runs.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace decor::core {

struct RunReportOptions {
  /// Most field snapshots rendered as heatmaps per field file; when a
  /// file holds more, snapshots are subsampled evenly (first and last
  /// always kept) and the report says how many were skipped.
  std::size_t max_heatmaps = 10;
  /// Most audit rows rendered; the report counts the rest.
  std::size_t max_audit_rows = 200;
};

/// Renders the report for every recognized artifact under `dir`
/// (recursively, so flight bundles nested in a run directory are
/// included). Throws common::RequireError when `dir` is not a readable
/// directory; unreadable or malformed artifact lines are skipped and
/// counted in the report itself. Empty or truncated artifacts are
/// additionally surfaced as counted warnings in the report header.
std::string render_run_report_html(const std::string& dir,
                                   const RunReportOptions& opts = {});

/// Multi-run aggregate report: each directory is loaded like the
/// single-dir form, then the report opens with a run-vs-run summary
/// table (convergence time, final coverage, placements, warnings) and
/// an overlaid covered-fraction chart before the per-run sections,
/// which are anchor-linked from the summary. One directory degrades to
/// the single-dir layout. Throws common::RequireError when `dirs` is
/// empty or any entry is not a readable directory. Byte-deterministic
/// like the single-dir form: labels come from the directory basenames,
/// never absolute paths.
std::string render_run_report_html(const std::vector<std::string>& dirs,
                                   const RunReportOptions& opts = {});

}  // namespace decor::core
