// Live TUI dashboard over the streaming telemetry artifacts.
//
// `decor watch` renders the same decor.* JSONL streams the simulators
// emit — decor.timeline.v1 samples, decor.field.v1 deficit rasters and
// decor.metrics.v1 registry snapshots — as a fixed-size text dashboard:
// a k-deficit heatmap (max-pooled onto the terminal raster) plus
// sparklines for coverage %, alive nodes, the ARQ retransmission ratio
// and data-plane goodput. Two feeding modes share one DashboardState:
//
//   * replay: a completed run directory (or flight bundle) is scanned
//     for JSONL artifacts, their lines merged in time order, and one
//     frame rendered per timeline/field event;
//   * follow: a DTLM frame stream (`--telemetry=-` piped from a live
//     `decor sim`, a capture file, or stdin) is consumed incrementally.
//
// Rendering is byte-deterministic: frames depend only on the ingested
// lines and the requested geometry — identical artifacts produce
// identical frames (the golden-frame test diffs renderer output).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace decor::core {

/// One ingested decor.timeline.v1 sample (only the dashboard's columns).
struct WatchTimelinePoint {
  double t = 0.0;
  double covered = 0.0;  ///< fraction in [0,1]
  std::uint64_t uncovered = 0;
  std::uint64_t alive = 0;
  std::uint64_t arq_in_flight = 0;
  /// --timeline-arq columns (absent on historical timelines).
  bool has_arq = false;
  std::uint64_t arq_sent = 0;
  std::uint64_t arq_retx = 0;
  /// Data-plane columns (absent unless the workload ran).
  bool has_readings = false;
  std::uint64_t reading_bytes = 0;
};

/// Accumulated dashboard inputs; fed one JSONL line at a time.
class DashboardState {
 public:
  /// Ingests one line from stream `stream` ("timeline", "field",
  /// "metrics", "audit"; other names are ignored). Header lines (any
  /// object with a "schema" member) configure the state — the field
  /// header carries k and the raster geometry. Returns false for lines
  /// that do not parse as JSON (counted in malformed()).
  bool ingest(std::string_view stream, std::string_view line);

  const std::vector<WatchTimelinePoint>& timeline() const noexcept {
    return timeline_;
  }
  bool has_field() const noexcept {
    return field_cols_ > 0 && field_rows_ > 0 && !raster_.empty();
  }
  std::uint32_t k() const noexcept { return k_; }
  std::size_t field_cols() const noexcept { return field_cols_; }
  std::size_t field_rows() const noexcept { return field_rows_; }
  const std::vector<std::uint32_t>& raster() const noexcept {
    return raster_;
  }
  double field_t() const noexcept { return field_t_; }
  double field_deficit() const noexcept { return field_deficit_; }
  std::uint64_t field_uncovered() const noexcept { return field_uncovered_; }
  std::size_t field_snapshots() const noexcept { return field_count_; }
  std::size_t metrics_snapshots() const noexcept { return metrics_count_; }
  std::size_t audit_records() const noexcept { return audit_count_; }
  /// Latest sim time seen on any stream.
  double last_t() const noexcept { return last_t_; }
  std::size_t malformed() const noexcept { return malformed_; }

  /// Whole frames a lossy transport shed upstream (DTLM sequence gaps in
  /// follow mode); surfaced on the status line when nonzero.
  void note_dropped(std::uint64_t n) noexcept { dropped_frames_ += n; }
  std::uint64_t dropped_frames() const noexcept { return dropped_frames_; }

 private:
  std::vector<WatchTimelinePoint> timeline_;
  std::uint32_t k_ = 0;
  std::size_t field_cols_ = 0;
  std::size_t field_rows_ = 0;
  std::vector<std::uint32_t> raster_;
  double field_t_ = 0.0;
  double field_deficit_ = 0.0;
  std::uint64_t field_uncovered_ = 0;
  std::size_t field_count_ = 0;
  std::size_t metrics_count_ = 0;
  std::size_t audit_count_ = 0;
  double last_t_ = 0.0;
  std::size_t malformed_ = 0;
  std::uint64_t dropped_frames_ = 0;
};

/// Renders one dashboard frame: exactly `rows` lines (each padded or
/// truncated to `cols` display columns, '\n'-terminated). Geometry is
/// clamped to the 32x10 minimum the layout needs. Pure function of the
/// state — the determinism contract of the golden-frame test.
std::string render_dashboard_frame(const DashboardState& state,
                                   std::size_t cols, std::size_t rows);

struct WatchOptions {
  std::size_t cols = 72;
  std::size_t rows = 20;
  /// Replay: render at most this many frames, evenly subsampled with
  /// first and last kept (0 = every timeline/field event). Follow: stop
  /// after this many frames (0 = until EOF).
  std::size_t max_frames = 0;
  /// true = prefix each frame with an ANSI home+clear (live terminal);
  /// false = separate frames with a form-feed line (files, goldens).
  bool ansi = false;
};

/// Replays the JSONL artifacts under `dir` (recursively; files are
/// classified by their schema header and merged in time order) and
/// writes one frame per timeline/field event to `out`. Returns the
/// number of frames written. Throws common::RequireError when `dir` is
/// not a readable directory.
std::size_t watch_replay_dir(const std::string& dir,
                             const WatchOptions& opts, std::ostream& out);

/// Consumes DTLM frames ("DTLM <stream> <seq> <len>\n<payload>\n") from
/// `in` until EOF (or max_frames), rendering a dashboard frame after
/// every timeline/field event. Non-DTLM lines are skipped, so the feed
/// may be interleaved with ordinary program output. Returns the number
/// of frames written.
std::size_t watch_follow(std::FILE* in, const WatchOptions& opts,
                         std::ostream& out);

}  // namespace decor::core
