#include "decor/voronoi_engine.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/profile.hpp"
#include "common/require.hpp"
#include "coverage/benefit_index.hpp"

namespace decor::core {

namespace {

constexpr std::int64_t kNoOwner = coverage::BenefitIndex::kNoOwner;

common::Histogram& ownership_hist() {
  static common::Histogram& h =
      common::profile_histogram("profile.voronoi.build_ownership_us");
  return h;
}

class VoronoiEngine {
 public:
  VoronoiEngine(Field& field, common::Rng& rng, EngineLimits limits)
      : field_(field),
        rng_(rng),
        limits_(limits),
        k_(field.params.k),
        rs_(field.params.rs),
        rc_(field.params.rc) {}

  DeploymentResult run();

 private:
  void build_ownership();
  void claim_territory(std::uint32_t node, geom::Point2 pos);
  bool seed_frontier(DeploymentResult& result);
  void place(std::uint32_t owner_of_decision, geom::Point2 pos,
             DeploymentResult& result);

  Field& field_;
  common::Rng& rng_;
  EngineLimits limits_;
  std::uint32_t k_;
  double rs_;
  double rc_;
  // Ground-truth counts plus per-point owner labels and owner-restricted
  // Equation-1 benefits, all maintained incrementally: a placement is one
  // add_disc, a territory claim a set_owner per reassigned point.
  std::unique_ptr<coverage::BenefitIndex> index_;
};

void VoronoiEngine::build_ownership() {
  common::ProfileScope profile(ownership_hist());
  const auto& index = field_.map.index();
  std::vector<std::int64_t> owners(index.size(), kNoOwner);
  for (std::size_t pid = 0; pid < index.size(); ++pid) {
    const geom::Point2 p = index.point(pid);
    double best_d = std::numeric_limits<double>::infinity();
    std::int64_t best = kNoOwner;
    field_.sensors.index().for_each_in_disc(
        p, rc_, [&](std::uint32_t sid, geom::Point2 spos) {
          const double d = geom::distance_sq(p, spos);
          if (d < best_d || (d == best_d && static_cast<std::int64_t>(sid) <
                                                best)) {
            best_d = d;
            best = sid;
          }
        });
    owners[pid] = best;
  }
  index_ = std::make_unique<coverage::BenefitIndex>(
      field_.map, k_, std::move(owners), 0,
      coverage::ShardSpec{field_.params.shards});
}

void VoronoiEngine::claim_territory(std::uint32_t node, geom::Point2 pos) {
  // The new node takes over every point within rc that is now closer to
  // it than to the point's previous owner (Definition 1, incremental).
  field_.map.index().for_each_in_disc(pos, rc_, [&](std::size_t pid) {
    const geom::Point2 p = field_.map.index().point(pid);
    const double d_new = geom::distance_sq(p, pos);
    const std::int64_t cur_owner = index_->owner(pid);
    if (cur_owner == kNoOwner) {
      index_->set_owner(pid, node);
      return;
    }
    const geom::Point2 cur =
        field_.sensors.position(static_cast<std::uint32_t>(cur_owner));
    const double d_cur = geom::distance_sq(p, cur);
    if (d_new < d_cur ||
        (d_new == d_cur && node < static_cast<std::uint32_t>(cur_owner))) {
      index_->set_owner(pid, node);
    }
  });
}

void VoronoiEngine::place(std::uint32_t placing_owner, geom::Point2 pos,
                          DeploymentResult& result) {
  // The placing node announces the deployment to its rc-neighborhood.
  const geom::Point2 announcer =
      field_.sensors.position(placing_owner);
  result.messages += field_.sensors.index().count_in_disc(announcer, rc_) - 1;

  const std::uint32_t id = field_.deploy(pos);
  index_->add_disc(pos, rs_);
  ++result.placed_nodes;
  result.placements.push_back(pos);
  claim_territory(id, pos);
  if (limits_.on_place) limits_.on_place(result.placed_nodes, field_.map);
}

bool VoronoiEngine::seed_frontier(DeploymentResult& result) {
  // Only unowned uncovered points remain: carry a starter node to the one
  // nearest to the deployed network (or to the first uncovered point when
  // the field is empty).
  const auto& index = field_.map.index();
  const double diag = std::sqrt(index.bounds().width() * index.bounds().width() +
                                index.bounds().height() * index.bounds().height());
  geom::Point2 best_pos{};
  double best_d = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t pid = 0; pid < index.size(); ++pid) {
    if (index_->count(pid) >= k_ || index_->owner(pid) != kNoOwner) continue;
    const geom::Point2 p = index.point(pid);
    // Distance to the nearest alive sensor, by expanding ring search.
    double d = std::numeric_limits<double>::infinity();
    for (double r = rc_; r <= 2.0 * diag; r *= 2.0) {
      double local = std::numeric_limits<double>::infinity();
      field_.sensors.index().for_each_in_disc(
          p, r, [&](std::uint32_t, geom::Point2 spos) {
            local = std::min(local, geom::distance_sq(p, spos));
          });
      if (local < std::numeric_limits<double>::infinity()) {
        d = local;
        break;
      }
    }
    if (!found || d < best_d) {
      best_d = d;
      best_pos = p;
      found = true;
    }
  }
  if (!found) return false;
  const std::uint32_t id = field_.deploy(best_pos);
  index_->add_disc(best_pos, rs_);
  ++result.placed_nodes;
  result.placements.push_back(best_pos);
  ++result.messages;  // the out-of-band seeding directive
  claim_territory(id, best_pos);
  if (limits_.on_place) limits_.on_place(result.placed_nodes, field_.map);
  return true;
}

DeploymentResult VoronoiEngine::run() {
  DeploymentResult result;
  result.initial_nodes = field_.sensors.alive_count();
  build_ownership();

  const auto& index = field_.map.index();
  while (result.placed_nodes < limits_.max_new_nodes) {
    // Group uncovered points by owner (round-start snapshot).
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_owner;
    bool any_unowned_uncovered = false;
    for (std::size_t pid = 0; pid < index.size(); ++pid) {
      if (index_->count(pid) >= k_) continue;
      const std::int64_t owner = index_->owner(pid);
      if (owner == kNoOwner) {
        any_unowned_uncovered = true;
        continue;
      }
      by_owner[static_cast<std::uint32_t>(owner)].push_back(pid);
    }

    if (by_owner.empty()) {
      if (!any_unowned_uncovered) break;  // fully covered
      ++result.rounds;
      if (!seed_frontier(result)) break;
      continue;
    }

    // Every owner decides simultaneously on the round-start coverage; the
    // snapshot of counts is implicit because placements apply afterwards.
    // Benefit over this node's own points only (Equation 1 restricted to
    // the local Voronoi cell) is an O(1) read per candidate.
    struct Decision {
      std::uint32_t owner;
      geom::Point2 pos;
    };
    std::vector<Decision> decisions;
    decisions.reserve(by_owner.size());
    for (auto& [owner, pids] : by_owner) {
      std::uint64_t best_benefit = 0;
      geom::Point2 best_pos{};
      bool found = false;
      for (std::size_t pid : pids) {
        const std::uint64_t b = index_->benefit(pid);
        if (!found || b > best_benefit) {
          best_benefit = b;
          best_pos = index.point(pid);
          found = true;
        }
      }
      DECOR_ASSERT(found);
      decisions.push_back(Decision{owner, best_pos});
    }

    ++result.rounds;
    // Deterministic application order (sorted by owner id), shuffled to
    // de-bias the trace; the decisions themselves were simultaneous.
    std::sort(decisions.begin(), decisions.end(),
              [](const Decision& a, const Decision& b) {
                return a.owner < b.owner;
              });
    rng_.shuffle(decisions);
    for (const auto& d : decisions) {
      if (result.placed_nodes >= limits_.max_new_nodes) break;
      place(d.owner, d.pos, result);
    }
  }

  result.cells = std::max<std::size_t>(field_.sensors.alive_count(), 1);
  result.reached_full_coverage = field_.map.fully_covered(k_);
  return result;
}

}  // namespace

DeploymentResult voronoi_decor(Field& field, common::Rng& rng,
                               EngineLimits limits) {
  return VoronoiEngine(field, rng, limits).run();
}

}  // namespace decor::core
