// Protocol-driven grid DECOR on the discrete-event simulator.
//
// The offline engine (grid_engine.*) emulates distributed execution with
// synchronous rounds; this runner executes the real thing: every sensor is
// a sim::NodeProcess exchanging HELLO / heartbeat / election / placement
// messages over the unit-disc radio, leaders are elected with randomized
// rotation, and replacement sensors are spawned into the running world.
// It exists to validate the protocol end-to-end (tests) and to ground the
// message accounting of the offline engine against real radio traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/telemetry.hpp"
#include "coverage/coverage_map.hpp"
#include "coverage/field_recorder.hpp"
#include "coverage/metrics.hpp"
#include "decor/params.hpp"
#include "geometry/grid_partition.hpp"
#include "net/leader_election.hpp"
#include "net/sensor_node.hpp"
#include "sim/audit_log.hpp"
#include "sim/fault.hpp"
#include "sim/invariant_monitor.hpp"
#include "sim/metrics_snapshot.hpp"
#include "sim/timeline.hpp"
#include "sim/world.hpp"

namespace decor::core {

struct SimRunConfig {
  DecorParams params;
  std::vector<geom::Point2> initial_positions;
  std::uint64_t seed = 1;

  /// Wall limit in simulated seconds; the run also stops as soon as the
  /// field is fully k-covered.
  double run_time = 300.0;

  /// When > 0, reaching full k-coverage no longer stops the run at the
  /// convergence instant: the simulation keeps going for this many extra
  /// seconds (still capped by run_time). finish_time records the
  /// convergence time either way. This gives the data plane a
  /// fixed-length measurement window, so goodput comparisons are not
  /// confounded by how quickly restoration happened to converge.
  double linger_after_coverage = 0.0;

  /// Pacing of a leader's placement loop (one new sensor per interval).
  double placement_interval = 0.5;

  /// How often leaders probe adjacent cells for silence before seeding.
  double seed_check_interval = 5.0;

  net::HeartbeatParams heartbeat{1.0, 3.5};
  net::ElectionParams election{60.0, 0.05, 0.01};
  sim::RadioParams radio{};

  /// ARQ (net::ReliableLink) under the control-plane messages (kLeader,
  /// kPlacement, kCoverageQuery/Reply, seed probes); kHello/kHeartbeat
  /// stay best-effort. Disable to reproduce the fire-and-forget stack.
  bool enable_arq = true;
  net::ReliableLinkParams arq{};

  /// Data-plane workload: every non-sink sensor streams kReading frames
  /// to the base station (node 0, the first initial position) while
  /// restoration runs. Off by default — control-plane-only trajectories
  /// stay byte-identical.
  net::DataPlaneParams data_plane{};

  /// Tracing (applied to the world's Trace at construction): record
  /// protocol events, optionally bounded to the `trace_capacity` most
  /// recent records (0 = unbounded) and/or streamed to `trace_jsonl` as
  /// one JSON object per line.
  bool trace = false;
  std::size_t trace_capacity = 0;
  std::string trace_jsonl;

  /// Convergence timeline: sample coverage/liveness/ARQ state every
  /// `timeline_interval` sim-seconds (0 = no timeline), optionally
  /// streaming decor.timeline.v1 lines to `timeline_jsonl`.
  double timeline_interval = 0.0;
  std::string timeline_jsonl;

  /// Spatial field recorder: rasterized k-deficit snapshots every
  /// `field_interval` sim-seconds (decor.field.v1), with a forced
  /// snapshot at the convergence instant. Recording is on when either
  /// field_interval > 0 or `field_jsonl` is set (the interval then
  /// defaults to 1s); `field_raster` overrides the rs-derived raster
  /// side (0 = FieldRecorder::default_raster).
  double field_interval = 0.0;
  std::string field_jsonl;
  std::size_t field_raster = 0;

  /// Placement audit log: record every placement decision (in memory;
  /// tests and reports). `audit_jsonl` additionally streams each record
  /// as a decor.audit.v1 line and implies `audit`.
  bool audit = false;
  std::string audit_jsonl;

  /// Flight recorder: when set, a run that ends without full coverage (or
  /// aborts on an exception) dumps trace/timeline/metrics into this
  /// directory (see sim/flight_recorder.hpp for the bundle layout).
  std::string flight_dir;

  /// Fault campaign (decor.faults.v1): armed on the event queue before
  /// the run starts. A non-empty plan switches the ARQ to
  /// purge_on_give_up so rebooted peers are un-quarantined (see
  /// ReliableLinkParams); empty plans leave trajectories untouched.
  sim::FaultPlan fault_plan;

  /// Invariant monitor cadence in sim-seconds (0 = monitor off): every
  /// period the harness re-proves ground-truth coverage consistency,
  /// leader uniqueness, ArqStats conservation and the goodput bound, and
  /// dumps a flight bundle (if flight_dir is set) on first violation.
  double invariant_interval = 0.0;

  /// Periodic metrics-registry snapshots (decor.metrics.v1): active when
  /// `metrics_interval` > 0 or `metrics_jsonl` is set. The cadence
  /// defaults to the timeline cadence (then 1s) when only the sink path
  /// is given. Snapshots are meaningful only while the registry is
  /// enabled (--json / MetricsRegistry::enable).
  double metrics_interval = 0.0;
  std::string metrics_jsonl;

  /// Live telemetry stream: length-prefixed DTLM frames of the
  /// timeline/field/audit/metrics streams to "-" (stdout), a file path,
  /// or "tcp:HOST:PORT" (what `decor watch` consumes).
  std::string telemetry_stream;

  /// OTLP/JSON export endpoint: a file path (document rewritten at run
  /// end) or "http://host:port/path" (best-effort POST). Implies trace
  /// recording — spans are built from trace causality ids.
  std::string otlp;

  /// Serialize cumulative ARQ sent/retx counters on every timeline
  /// sample (the live dashboard's retx-ratio series). Off by default so
  /// existing decor.timeline.v1 output stays byte-identical.
  bool timeline_arq = false;
};

struct SimRunResult {
  std::size_t initial_nodes = 0;
  std::size_t placed_nodes = 0;
  bool reached_full_coverage = false;
  double finish_time = 0.0;
  /// Sim clock when the run actually stopped (== finish_time unless
  /// linger_after_coverage extended it); goodput denominators use this.
  double end_time = 0.0;
  std::uint64_t radio_tx = 0;
  std::uint64_t radio_rx = 0;
  /// ARQ accounting, cumulative over the harness lifetime (not reset
  /// between repeated run() calls on one harness).
  net::ArqStats arq;
  /// Data-plane accounting (all zeros unless cfg.data_plane.enabled).
  net::DataPlaneStats data;
  coverage::CoverageMetrics metrics;
  std::vector<geom::Point2> placements;
  /// Fault-campaign accounting (zeros unless cfg.fault_plan non-empty).
  std::uint64_t faults_fired = 0;
  std::uint64_t radio_corrupted = 0;
  std::uint64_t radio_partition_blocked = 0;
  /// Invariant-monitor accounting (zeros unless invariant_interval > 0).
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
};

class GridSimHarness {
 public:
  /// Shared static field knowledge handed to every simulated node
  /// (defined in the .cpp; opaque to API users).
  struct Shared;

  explicit GridSimHarness(SimRunConfig cfg);
  ~GridSimHarness();

  GridSimHarness(const GridSimHarness&) = delete;
  GridSimHarness& operator=(const GridSimHarness&) = delete;

  sim::World& world() noexcept { return *world_; }
  coverage::CoverageMap& map() noexcept { return *map_; }
  /// The convergence timeline (empty unless cfg.timeline_interval > 0).
  sim::Timeline& timeline() noexcept { return timeline_; }
  /// The field recorder, or nullptr when field recording is off.
  coverage::FieldRecorder* field() noexcept { return field_.get(); }
  /// The placement audit log (empty unless cfg.audit / cfg.audit_jsonl).
  sim::AuditLog& audit() noexcept { return audit_; }
  /// The telemetry bus every producer of this harness publishes on.
  common::TelemetryBus& telemetry() noexcept { return bus_; }
  /// The periodic metrics snapshotter (inactive unless configured).
  sim::MetricsSnapshotter& metrics_snapshotter() noexcept {
    return metrics_snap_;
  }
  const geom::GridPartition& partition() const noexcept;

  /// Spawns a DECOR node at `pos` (used for initial deployment and by
  /// leaders for replacements); keeps the ground-truth map in sync.
  std::uint32_t spawn_node(geom::Point2 pos);

  /// Kills a node and removes its coverage (failure injection).
  void kill_node(std::uint32_t id);

  /// Reboots a dead node in place with a fresh protocol process
  /// (amnesia); restores its coverage disc. No-op on an alive node.
  void reboot_node(std::uint32_t id);

  /// The fault injector, or nullptr when cfg.fault_plan is empty.
  sim::FaultInjector* injector() noexcept { return injector_.get(); }
  /// The invariant monitor (inactive unless cfg.invariant_interval > 0).
  sim::InvariantMonitor& monitor() noexcept { return monitor_; }

  /// Chaos: at simulated time `at`, kills the node currently acting as a
  /// cell leader (lowest cell id with an alive leader wins). Victims are
  /// resolved when the event fires, so "whoever leads then" is targeted.
  /// No-op if no leader is alive at `at`.
  void schedule_leader_kill(double at);

  /// Chaos: at simulated time `at`, kills `count` uniformly random alive
  /// nodes (ground-truth map kept in sync, unlike raw World::kill).
  void schedule_random_kills(double at, std::size_t count);

  /// Runs the simulation until full k-coverage or cfg.run_time.
  SimRunResult run();

 private:
  sim::TimelineSample sample_timeline();
  void dump_flight_bundle(const std::string& reason,
                          const std::string& detail);
  void register_invariants();

  SimRunConfig cfg_;
  /// Declared before the producers so sinks outlive nothing that
  /// publishes into them (producers detach their file sinks themselves;
  /// destruction order only matters for the bus-owned extra sinks).
  common::TelemetryBus bus_;
  /// Bus-owned live stream sink, retained to surface its whole-frame
  /// drop count (TCP backpressure) as telemetry.dropped_frames.
  common::FrameStreamSink* telemetry_sink_ = nullptr;
  std::uint64_t telemetry_dropped_reported_ = 0;
  std::unique_ptr<sim::World> world_;
  std::unique_ptr<coverage::CoverageMap> map_;
  std::shared_ptr<Shared> shared_;
  sim::Timeline timeline_;
  sim::MetricsSnapshotter metrics_snap_;
  std::unique_ptr<coverage::FieldRecorder> field_;
  sim::AuditLog audit_;
  std::unique_ptr<sim::FaultInjector> injector_;
  sim::InvariantMonitor monitor_;
  /// First sim time each cell was seen with >1 leader (grace tracking
  /// for the leader-uniqueness invariant; cleared on recovery).
  std::map<std::uint32_t, double> leader_conflict_since_;
  std::vector<geom::Point2> placements_;
  std::size_t initial_nodes_ = 0;
  bool initial_deployed_ = false;
};

/// One-call convenience wrapper.
SimRunResult run_grid_decor_sim(const SimRunConfig& cfg);

/// OTLP span name for a trace record: radio records carry the protocol
/// message kind as "kind=<int>" in the detail, which maps onto the wire
/// vocabulary ("msg.placement"); anything else falls back to the trace
/// kind. Shared by both protocol harnesses.
std::string otlp_span_name(std::string_view kind, std::string_view detail);

}  // namespace decor::core
