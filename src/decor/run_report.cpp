#include "decor/run_report.hpp"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/json.hpp"
#include "common/require.hpp"
#include "decor/artifacts.hpp"
#include "decor/explain.hpp"
#include "net/messages.hpp"
#include "sim/trace_export.hpp"

namespace decor::core {

namespace {

namespace fs = std::filesystem;
using common::JsonValue;

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Compact re-serialization of a parsed value (manifest display). Number
/// formatting goes through format_double, so re-rendered bytes are
/// deterministic even if they differ cosmetically from the source.
void json_to_stream(const JsonValue& v, std::ostream& os) {
  switch (v.type()) {
    case JsonValue::Type::kNull:
      os << "null";
      break;
    case JsonValue::Type::kBool:
      os << (v.as_bool() ? "true" : "false");
      break;
    case JsonValue::Type::kNumber:
      os << common::format_double(v.as_number());
      break;
    case JsonValue::Type::kString:
      os << '"' << common::json_escape(v.as_string()) << '"';
      break;
    case JsonValue::Type::kArray: {
      os << '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) os << ',';
        first = false;
        json_to_stream(item, os);
      }
      os << ']';
      break;
    }
    case JsonValue::Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, mv] : v.members()) {
        if (!first) os << ',';
        first = false;
        os << '"' << common::json_escape(k) << "\":";
        json_to_stream(mv, os);
      }
      os << '}';
      break;
    }
  }
}

std::string json_to_string(const JsonValue& v) {
  std::ostringstream os;
  json_to_stream(v, os);
  return os.str();
}

double num_at(const JsonValue& obj, std::string_view key, double def = 0.0) {
  const auto* v = obj.find(key);
  return v != nullptr ? v->as_number(def) : def;
}

std::string str_at(const JsonValue& obj, std::string_view key) {
  const auto* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string();
}

std::string fmt(double v) { return common::format_double(v); }

// --- field heatmaps ------------------------------------------------------

void render_heatmap_svg(std::ostream& os, const JsonValue& snap,
                        std::size_t cols, std::size_t rows,
                        std::uint64_t global_max) {
  const std::size_t px =
      std::clamp<std::size_t>(cols == 0 ? 8 : 320 / cols, 4, 16);
  const std::size_t w = cols * px;
  const std::size_t h = rows * px;
  os << "<svg width=\"" << w << "\" height=\"" << h << "\" viewBox=\"0 0 "
     << w << " " << h << "\" xmlns=\"http://www.w3.org/2000/svg\">";
  os << "<rect width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#f7f7f7\" stroke=\"#ccc\"/>";
  const auto* raster = snap.find("raster");
  if (raster != nullptr && global_max > 0) {
    const auto& cells = raster->items();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const auto d = static_cast<std::uint64_t>(cells[i].as_number());
      if (d == 0) continue;
      const std::size_t c = i % cols;
      const std::size_t r = i / cols;
      // Raster rows run bottom-up; SVG y runs down.
      const std::size_t y = (rows - 1 - r) * px;
      // White (deficit 1 barely visible would be wrong: scale so the
      // smallest deficit is still clearly tinted) down to full red.
      const std::uint64_t g = 200 - (200 * d) / global_max;
      os << "<rect x=\"" << c * px << "\" y=\"" << y << "\" width=\"" << px
         << "\" height=\"" << px << "\" fill=\"rgb(255," << g << "," << g
         << ")\"/>";
    }
  }
  os << "</svg>";
}

void render_field_section(std::ostream& os, const Artifact& a,
                          const RunReportOptions& opts) {
  const std::size_t cols =
      static_cast<std::size_t>(num_at(a.header, "cols", 1));
  const std::size_t rows =
      static_cast<std::size_t>(num_at(a.header, "rows", 1));
  os << "<h2>Field snapshots — " << html_escape(a.rel) << "</h2>\n";
  os << "<p>raster " << cols << "×" << rows << ", k="
     << fmt(num_at(a.header, "k")) << ", field " << fmt(num_at(a.header, "x0"))
     << "," << fmt(num_at(a.header, "y0")) << " +"
     << fmt(num_at(a.header, "width")) << "×"
     << fmt(num_at(a.header, "height")) << "</p>\n";
  if (a.records.empty()) {
    os << "<p>no snapshots recorded</p>\n";
    return;
  }

  // One color scale across the whole file, so a draining deficit fades
  // visibly from snapshot to snapshot.
  std::uint64_t global_max = 0;
  for (const auto& s : a.records) {
    if (const auto* raster = s.find("raster")) {
      for (const auto& cell : raster->items()) {
        global_max = std::max(
            global_max, static_cast<std::uint64_t>(cell.as_number()));
      }
    }
  }

  // Even subsample (first and last always kept) when the run recorded
  // more snapshots than the report should carry.
  std::vector<std::size_t> picks;
  const std::size_t n = a.records.size();
  const std::size_t cap = std::max<std::size_t>(opts.max_heatmaps, 2);
  if (n <= cap) {
    for (std::size_t i = 0; i < n; ++i) picks.push_back(i);
  } else {
    for (std::size_t i = 0; i < cap; ++i) {
      picks.push_back(i * (n - 1) / (cap - 1));
    }
    picks.erase(std::unique(picks.begin(), picks.end()), picks.end());
    os << "<p>" << n << " snapshots recorded; showing " << picks.size()
       << " (evenly subsampled)</p>\n";
  }

  os << "<div class=\"snaps\">\n";
  for (const std::size_t i : picks) {
    const auto& s = a.records[i];
    os << "<figure>";
    render_heatmap_svg(os, s, cols, rows, global_max);
    os << "<figcaption>t=" << fmt(num_at(s, "t"))
       << (s.find("forced") != nullptr && s.find("forced")->as_bool()
               ? " (forced)"
               : "")
       << ", deficit " << fmt(num_at(s, "total_deficit")) << ", uncovered "
       << fmt(num_at(s, "uncovered"));
    if (const auto* holes = s.find("holes");
        holes != nullptr && !holes->items().empty()) {
      os << ", " << holes->items().size() << " hole"
         << (holes->items().size() == 1 ? "" : "s");
    }
    os << "</figcaption></figure>\n";
  }
  os << "</div>\n";

  // Hole inventory of the last rendered snapshot: the holes that still
  // matter when the artifact ends.
  const auto& last = a.records.back();
  if (const auto* holes = last.find("holes");
      holes != nullptr && !holes->items().empty()) {
    os << "<h3>Holes at t=" << fmt(num_at(last, "t")) << "</h3>\n"
       << "<table><tr><th>points</th><th>area</th><th>centroid</th>"
          "<th>max deficit</th></tr>\n";
    for (const auto& hole : holes->items()) {
      os << "<tr><td>" << fmt(num_at(hole, "points")) << "</td><td>"
         << fmt(num_at(hole, "area")) << "</td><td>"
         << fmt(num_at(hole, "cx")) << "," << fmt(num_at(hole, "cy"))
         << "</td><td>" << fmt(num_at(hole, "max_deficit"))
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
}

// --- timeline charts -----------------------------------------------------

void render_polyline_chart(std::ostream& os, const std::string& label,
                           const std::vector<std::pair<double, double>>& pts,
                           double y_max) {
  const int w = 640, h = 140, pad = 4;
  os << "<figure><svg width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << " " << h
     << "\" xmlns=\"http://www.w3.org/2000/svg\">"
     << "<rect width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#f7f7f7\" stroke=\"#ccc\"/>";
  if (!pts.empty() && y_max > 0.0) {
    const double t0 = pts.front().first;
    const double t1 = pts.back().first;
    const double span = t1 > t0 ? t1 - t0 : 1.0;
    os << "<polyline fill=\"none\" stroke=\"#06c\" stroke-width=\"1.5\" "
          "points=\"";
    bool first = true;
    for (const auto& [t, v] : pts) {
      const double x =
          pad + (t - t0) / span * static_cast<double>(w - 2 * pad);
      const double y = static_cast<double>(h - pad) -
                       std::clamp(v / y_max, 0.0, 1.0) *
                           static_cast<double>(h - 2 * pad);
      if (!first) os << ' ';
      first = false;
      os << fmt(x) << ',' << fmt(y);
    }
    os << "\"/>";
  }
  os << "</svg><figcaption>" << html_escape(label);
  if (!pts.empty()) {
    os << " — t " << fmt(pts.front().first) << "…" << fmt(pts.back().first)
       << " s, max " << fmt(y_max);
  }
  os << "</figcaption></figure>\n";
}

void render_timeline_section(std::ostream& os, const Artifact& a) {
  os << "<h2>Timeline — " << html_escape(a.rel) << "</h2>\n";
  if (a.records.empty()) {
    os << "<p>no samples recorded</p>\n";
    return;
  }
  std::vector<std::pair<double, double>> covered, arq, alive;
  double arq_max = 0.0, alive_max = 0.0, convergence = -1.0;
  for (const auto& s : a.records) {
    const double t = num_at(s, "t");
    covered.emplace_back(t, num_at(s, "covered"));
    const double in_flight = num_at(s, "arq_in_flight");
    arq.emplace_back(t, in_flight);
    arq_max = std::max(arq_max, in_flight);
    const double al = num_at(s, "alive");
    alive.emplace_back(t, al);
    alive_max = std::max(alive_max, al);
    if (convergence < 0.0 && num_at(s, "uncovered", 1.0) == 0.0) {
      convergence = t;
    }
  }
  os << "<p>" << a.records.size() << " samples; "
     << (convergence >= 0.0
             ? "first fully covered sample at t=" + fmt(convergence) + " s"
             : std::string("never fully covered while sampling"))
     << "</p>\n";
  render_polyline_chart(os, "covered fraction", covered, 1.0);
  render_polyline_chart(os, "ARQ frames in flight", arq, arq_max);
  render_polyline_chart(os, "alive nodes", alive, alive_max);
}

// --- audit table ---------------------------------------------------------

void render_audit_section(std::ostream& os, const Artifact& a,
                          const RunReportOptions& opts) {
  os << "<h2>Placement audit — " << html_escape(a.rel) << "</h2>\n";
  if (a.records.empty()) {
    os << "<p>no decisions recorded</p>\n";
    return;
  }
  std::map<std::string, std::size_t> reasons;
  std::size_t near_ties = 0;
  for (const auto& r : a.records) {
    ++reasons[str_at(r, "reason")];
    const double benefit = num_at(r, "benefit");
    // A runner-up within 10% of the winner is a near-tie: the decision
    // another belief state could plausibly have flipped.
    if (benefit > 0.0 && num_at(r, "runner_up") >= 0.9 * benefit) {
      ++near_ties;
    }
  }
  os << "<p>" << a.records.size() << " decisions (";
  bool first = true;
  for (const auto& [reason, n] : reasons) {
    if (!first) os << ", ";
    first = false;
    os << html_escape(reason.empty() ? "?" : reason) << ": " << n;
  }
  os << "), " << near_ties << " near-tie" << (near_ties == 1 ? "" : "s")
     << " (runner-up within 10% of the winner)</p>\n";
  os << "<table><tr><th>t</th><th>actor</th><th>cell</th><th>reason</th>"
        "<th>point</th><th>pos</th><th>benefit</th><th>runner-up</th>"
        "<th>cands</th><th>newly sat.</th><th>trace</th></tr>\n";
  const std::size_t shown =
      std::min(a.records.size(), opts.max_audit_rows);
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& r = a.records[i];
    os << "<tr><td>" << fmt(num_at(r, "t")) << "</td><td>"
       << fmt(num_at(r, "actor")) << "</td><td>" << fmt(num_at(r, "cell"))
       << "</td><td>" << html_escape(str_at(r, "reason")) << "</td><td>"
       << fmt(num_at(r, "point")) << "</td><td>" << fmt(num_at(r, "x"))
       << "," << fmt(num_at(r, "y")) << "</td><td>"
       << fmt(num_at(r, "benefit")) << "</td><td>"
       << fmt(num_at(r, "runner_up")) << "</td><td>"
       << fmt(num_at(r, "candidates")) << "</td><td>"
       << fmt(num_at(r, "newly_satisfied")) << "</td><td>"
       << fmt(num_at(r, "trace_id")) << "</td></tr>\n";
  }
  os << "</table>\n";
  if (shown < a.records.size()) {
    os << "<p>" << (a.records.size() - shown)
       << " further decisions omitted</p>\n";
  }
}

// --- trace message stats -------------------------------------------------

void render_trace_section(std::ostream& os, const Artifact& a) {
  os << "<h2>Message stats — " << html_escape(a.rel) << "</h2>\n";
  std::map<std::string, std::uint64_t> tx_by_kind;
  std::uint64_t tx = 0, rx = 0, drops = 0, acks = 0;
  double convergence = -1.0;
  for (const auto& r : a.records) {
    const std::string kind = str_at(r, "kind");
    if (kind == "protocol") {
      if (str_at(r, "detail") == "converged" && convergence < 0.0) {
        convergence = num_at(r, "t");
      }
      continue;
    }
    if (kind == "rx") {
      ++rx;
      continue;
    }
    if (kind == "drop") {
      ++drops;
      continue;
    }
    if (kind != "tx") continue;
    ++tx;
    const int mk = sim::parse_detail_kind(str_at(r, "detail"));
    if (mk == net::kAck) {
      ++acks;
      continue;
    }
    const char* name = net::msg_kind_name(mk);
    ++tx_by_kind[name != nullptr ? name : "kind-" + std::to_string(mk)];
  }
  os << "<p>" << a.records.size() << " records: " << tx << " tx (" << acks
     << " acks), " << rx << " rx, " << drops << " dropped";
  if (convergence >= 0.0) {
    os << "; converged at t=" << fmt(convergence) << " s";
  }
  os << "</p>\n";
  if (!tx_by_kind.empty()) {
    os << "<table><tr><th>kind</th><th>tx frames</th></tr>\n";
    for (const auto& [name, n] : tx_by_kind) {
      os << "<tr><td>" << html_escape(name) << "</td><td>" << n
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
}

// --- explain: convergence critical path ----------------------------------

constexpr const char* kPhaseColors[3] = {"#e80", "#06c", "#c33"};

void render_phase_waterfall(std::ostream& os, const ExplainDoc& doc) {
  const int w = 640, h = 26;
  const double total = doc.detection + doc.decision + doc.propagation;
  os << "<figure><svg width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << " " << h
     << "\" xmlns=\"http://www.w3.org/2000/svg\">"
     << "<rect width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#f7f7f7\" stroke=\"#ccc\"/>";
  if (total > 0.0) {
    const double phases[3] = {doc.detection, doc.decision, doc.propagation};
    double x = 0.0;
    for (int i = 0; i < 3; ++i) {
      const double pw = phases[i] / total * (w - 2);
      if (pw > 0.0) {
        os << "<rect x=\"" << fmt(1.0 + x) << "\" y=\"3\" width=\""
           << fmt(pw) << "\" height=\"" << h - 6 << "\" fill=\""
           << kPhaseColors[i] << "\"/>";
      }
      x += pw;
    }
  }
  os << "</svg><figcaption>restoration latency attribution — "
     << "<span style=\"color:" << kPhaseColors[0] << "\">detection "
     << fmt(doc.detection) << " s</span>, <span style=\"color:"
     << kPhaseColors[1] << "\">decision " << fmt(doc.decision)
     << " s</span>, <span style=\"color:" << kPhaseColors[2]
     << "\">propagation " << fmt(doc.propagation)
     << " s</span></figcaption></figure>\n";
}

void render_exchange_waterfall(std::ostream& os, const ExplainExchange& ex) {
  constexpr std::size_t kMaxLegs = 24;
  const std::size_t shown = std::min(ex.legs.size(), kMaxLegs);
  const int w = 640, row = 14, pad = 4;
  const int h = static_cast<int>(shown) * row + 2 * pad;
  const double span = ex.last_t > ex.first_t ? ex.last_t - ex.first_t : 1.0;
  os << "<figure><svg width=\"" << w << "\" height=\"" << h
     << "\" viewBox=\"0 0 " << w << " " << h
     << "\" xmlns=\"http://www.w3.org/2000/svg\">"
     << "<rect width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#f7f7f7\" stroke=\"#ccc\"/>";
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& leg = ex.legs[i];
    const double x = pad + leg.dt / span * (w / 2 - 2 * pad);
    const int y = pad + static_cast<int>(i) * row;
    const char* color = leg.leg == "retransmit" ? "#c33"
                        : leg.leg == "drop"     ? "#a2a"
                        : leg.leg == "forward"  ? "#e80"
                        : leg.leg == "send"     ? "#06c"
                                                : "#2a2";
    os << "<rect x=\"" << fmt(x) << "\" y=\"" << y + 2
       << "\" width=\"5\" height=\"" << row - 4 << "\" fill=\"" << color
       << "\"/><text x=\"" << fmt(x + 9.0) << "\" y=\"" << y + row - 3
       << "\" font-size=\"10\" fill=\"#333\">" << html_escape(leg.leg)
       << " node " << leg.node;
    if (leg.from >= 0) os << " &#8592; " << leg.from;
    os << " +" << fmt(leg.dt) << "s</text>";
  }
  os << "</svg><figcaption>critical exchange waterfall — trace "
     << ex.trace_id << ", " << ex.legs.size() << " legs";
  if (shown < ex.legs.size()) {
    os << " (first " << shown << " shown)";
  }
  os << ", " << ex.retransmits << " retransmit"
     << (ex.retransmits == 1 ? "" : "s") << ", "
     << (ex.completed ? "acked" : "never completed")
     << "</figcaption></figure>\n";
}

void render_explain_section(std::ostream& os,
                            const std::vector<Artifact>& artifacts) {
  const ExplainDoc doc = analyze_run(artifacts);
  os << "<h2>Explain — convergence critical path</h2>\n";
  os << "<p>"
     << (doc.converged
             ? "converged at t=" + fmt(doc.convergence_time) + " s"
             : std::string("never converged within the artifacts"))
     << "; " << doc.audited_exchanges
     << " audited placement exchanges joined against " << doc.trace_records
     << " trace records</p>\n";
  render_phase_waterfall(os, doc);
  os << "<table><tr><th>critical path step</th><th>detail</th></tr>\n";
  if (doc.last_hole.present) {
    os << "<tr><td>last hole to close</td><td>centroid "
       << fmt(doc.last_hole.cx) << "," << fmt(doc.last_hole.cy) << ", "
       << doc.last_hole.points << " points, area " << fmt(doc.last_hole.area)
       << ", max deficit " << doc.last_hole.max_deficit << " (open at t="
       << fmt(doc.last_hole.t) << ")</td></tr>\n";
  }
  if (doc.closing_placement.present) {
    os << "<tr><td>closing placement</td><td>t="
       << fmt(doc.closing_placement.t) << " by node "
       << doc.closing_placement.actor << " ("
       << html_escape(doc.closing_placement.reason) << ") at "
       << fmt(doc.closing_placement.x) << ","
       << fmt(doc.closing_placement.y) << ", newly satisfied "
       << doc.closing_placement.newly_satisfied << ", trace "
       << doc.closing_placement.trace_id << "</td></tr>\n";
  }
  if (doc.exchange.present) {
    os << "<tr><td>exchange latency</td><td>"
       << fmt(doc.exchange.last_t - doc.exchange.first_t) << " s ("
       << fmt(doc.exchange.retx_delay)
       << " s retransmission-induced)</td></tr>\n";
  }
  os << "</table>\n";
  if (doc.exchange.present) render_exchange_waterfall(os, doc.exchange);
  if (!doc.nodes.empty()) {
    os << "<h3>Worst nodes</h3>\n"
       << "<table><tr><th>node</th><th>tx</th><th>retx</th><th>drops</th>"
          "<th>dead peers</th><th>retx ratio</th><th>latency infl.</th>"
          "<th>score</th></tr>\n";
    for (const auto& n : doc.nodes) {
      os << "<tr><td>" << n.node << "</td><td>" << n.tx << "</td><td>"
         << n.retx << "</td><td>" << n.drops << "</td><td>"
         << n.dead_peer_events << "</td><td>" << fmt(n.retx_ratio)
         << "</td><td>" << fmt(n.latency_inflation) << "</td><td>"
         << fmt(n.score) << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  if (!doc.links.empty()) {
    os << "<h3>Worst links</h3>\n"
       << "<table><tr><th>link</th><th>delivered</th><th>crc drops</th>"
          "<th>median latency</th><th>latency infl.</th><th>score</th>"
          "</tr>\n";
    for (const auto& l : doc.links) {
      os << "<tr><td>" << l.src << " &#8594; " << l.dst << "</td><td>"
         << l.delivered << "</td><td>" << l.crc_drops << "</td><td>"
         << fmt(l.median_latency) << "</td><td>"
         << fmt(l.latency_inflation) << "</td><td>" << fmt(l.score)
         << "</td></tr>\n";
    }
    os << "</table>\n";
  }
  if (!doc.warnings.empty()) {
    os << "<p>explain warnings: " << doc.warnings.size() << "</p>\n<ul>\n";
    for (const auto& warning : doc.warnings) {
      os << "<li>" << html_escape(warning) << "</li>\n";
    }
    os << "</ul>\n";
  }
}

// --- manifest ------------------------------------------------------------

void render_manifest_section(std::ostream& os, const Artifact& a) {
  os << "<h2>Flight bundle — " << html_escape(a.rel) << "</h2>\n"
     << "<table><tr><th>field</th><th>value</th></tr>\n";
  for (const auto& [key, v] : a.header.members()) {
    os << "<tr><td>" << html_escape(key) << "</td><td>";
    if (v.is_string()) {
      os << html_escape(v.as_string());
    } else {
      os << html_escape(json_to_string(v));
    }
    os << "</td></tr>\n";
  }
  os << "</table>\n";
}

// --- run loading and aggregation -----------------------------------------

void render_warning_block(std::ostream& os,
                          const std::vector<ArtifactWarning>& warnings) {
  os << "<p>artifact warnings: " << warnings.size() << "</p>\n";
  if (!warnings.empty()) {
    os << "<ul>\n";
    for (const auto& w : warnings) {
      os << "<li>" << html_escape(w.rel) << " — " << html_escape(w.reason)
         << "</li>\n";
    }
    os << "</ul>\n";
  }
}

/// The artifact inventory plus every per-artifact section for one run.
void render_run_body(std::ostream& os, const std::vector<Artifact>& artifacts,
                     const RunReportOptions& opts) {
  os << "<h2>Artifacts</h2>\n"
     << "<table><tr><th>file</th><th>type</th><th>records</th>"
        "<th>malformed lines</th></tr>\n";
  for (const auto& a : artifacts) {
    os << "<tr><td>" << html_escape(a.rel) << "</td><td>" << a.kind
       << "</td><td>"
       << (a.kind == "manifest" || a.kind == "metrics" ? 1
                                                       : a.records.size())
       << "</td><td>" << a.malformed << "</td></tr>\n";
  }
  os << "</table>\n";
  if (artifacts.empty()) {
    os << "<p>no recognized artifacts (*.jsonl, manifest.json, "
          "metrics.json) found</p>\n";
  }

  for (const auto& a : artifacts) {
    if (a.kind == "manifest") render_manifest_section(os, a);
  }
  render_explain_section(os, artifacts);
  for (const auto& a : artifacts) {
    if (a.kind == "field") render_field_section(os, a, opts);
  }
  for (const auto& a : artifacts) {
    if (a.kind == "timeline") render_timeline_section(os, a);
  }
  for (const auto& a : artifacts) {
    if (a.kind == "audit") render_audit_section(os, a, opts);
  }
  for (const auto& a : artifacts) {
    if (a.kind == "trace") render_trace_section(os, a);
  }
}

void render_html_head(std::ostream& os, const std::string& title) {
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n"
     << "<title>" << html_escape(title) << "</title>\n<style>\n"
     << "body{font-family:sans-serif;margin:2em;max-width:72em}\n"
     << "table{border-collapse:collapse;margin:0.5em 0}\n"
     << "td,th{border:1px solid #bbb;padding:2px 8px;text-align:right}\n"
     << "th{background:#eee}\ntd:first-child,th:first-child{text-align:left}\n"
     << "figure{display:inline-block;margin:0.5em;vertical-align:top}\n"
     << "figcaption{font-size:smaller;color:#444;max-width:24em}\n"
     << ".snaps{display:flex;flex-wrap:wrap}\n"
     << "</style></head><body>\n<h1>" << html_escape(title) << "</h1>\n";
}

/// Per-run summary distilled from the loaded artifacts (the columns of
/// the aggregate table; the first timeline artifact speaks for the run).
struct RunSummary {
  std::size_t timeline_samples = 0;
  double convergence = -1.0;
  double final_covered = -1.0;
  double final_alive = 0.0;
  std::size_t field_snapshots = 0;
  std::size_t audit_records = 0;
  std::size_t trace_records = 0;
  std::vector<std::pair<double, double>> covered_series;
};

RunSummary summarize_run(const std::vector<Artifact>& artifacts) {
  RunSummary s;
  for (const auto& a : artifacts) {
    if (a.kind == "timeline" && s.timeline_samples == 0) {
      s.timeline_samples = a.records.size();
      for (const auto& r : a.records) {
        const double t = num_at(r, "t");
        s.covered_series.emplace_back(t, num_at(r, "covered"));
        if (s.convergence < 0.0 && num_at(r, "uncovered", 1.0) == 0.0) {
          s.convergence = t;
        }
      }
      if (!a.records.empty()) {
        s.final_covered = num_at(a.records.back(), "covered");
        s.final_alive = num_at(a.records.back(), "alive");
      }
    } else if (a.kind == "field") {
      s.field_snapshots += a.records.size();
    } else if (a.kind == "audit") {
      s.audit_records += a.records.size();
    } else if (a.kind == "trace") {
      s.trace_records += a.records.size();
    }
  }
  return s;
}

/// Distinct stroke per run, recycled past eight runs.
constexpr const char* kRunPalette[] = {"#06c", "#c33", "#2a2", "#a2a",
                                       "#e80", "#0aa", "#888", "#640"};
constexpr std::size_t kRunPaletteSize =
    sizeof(kRunPalette) / sizeof(kRunPalette[0]);

void render_overlay_chart(
    std::ostream& os,
    const std::vector<std::pair<std::string, RunSummary>>& runs) {
  const int w = 640, h = 200, pad = 4;
  double t0 = 0.0, t1 = 0.0;
  bool any = false;
  for (const auto& [label, s] : runs) {
    if (s.covered_series.empty()) continue;
    if (!any) {
      t0 = s.covered_series.front().first;
      t1 = s.covered_series.back().first;
      any = true;
    } else {
      t0 = std::min(t0, s.covered_series.front().first);
      t1 = std::max(t1, s.covered_series.back().first);
    }
  }
  os << "<h2>Convergence overlay</h2>\n<figure><svg width=\"" << w
     << "\" height=\"" << h << "\" viewBox=\"0 0 " << w << " " << h
     << "\" xmlns=\"http://www.w3.org/2000/svg\">"
     << "<rect width=\"" << w << "\" height=\"" << h
     << "\" fill=\"#f7f7f7\" stroke=\"#ccc\"/>";
  if (any) {
    const double span = t1 > t0 ? t1 - t0 : 1.0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const auto& series = runs[i].second.covered_series;
      if (series.empty()) continue;
      os << "<polyline fill=\"none\" stroke=\""
         << kRunPalette[i % kRunPaletteSize]
         << "\" stroke-width=\"1.5\" points=\"";
      bool first = true;
      for (const auto& [t, v] : series) {
        const double x =
            pad + (t - t0) / span * static_cast<double>(w - 2 * pad);
        const double y = static_cast<double>(h - pad) -
                         std::clamp(v, 0.0, 1.0) *
                             static_cast<double>(h - 2 * pad);
        if (!first) os << ' ';
        first = false;
        os << fmt(x) << ',' << fmt(y);
      }
      os << "\"/>";
    }
  }
  os << "</svg><figcaption>covered fraction vs t — ";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) os << ", ";
    os << "<span style=\"color:" << kRunPalette[i % kRunPaletteSize]
       << "\">" << html_escape(runs[i].first) << "</span>";
  }
  os << "</figcaption></figure>\n";
}

/// Stable, path-free run label: "<index>: <basename>". The index keeps
/// same-named directories (seed sweeps named `run` in sibling trees)
/// distinguishable without leaking absolute paths into the bytes.
std::string run_label(const std::string& dir, std::size_t index) {
  fs::path p = fs::path(dir).lexically_normal();
  std::string base = p.filename().generic_string();
  if (base.empty() || base == ".") base = p.parent_path().filename().generic_string();
  if (base.empty()) base = "run";
  return std::to_string(index + 1) + ": " + base;
}

}  // namespace

std::string render_run_report_html(const std::string& dir,
                                   const RunReportOptions& opts) {
  return render_run_report_html(std::vector<std::string>{dir}, opts);
}

std::string render_run_report_html(const std::vector<std::string>& dirs,
                                   const RunReportOptions& opts) {
  DECOR_REQUIRE_MSG(!dirs.empty(), "report: no run directories given");

  std::vector<std::vector<Artifact>> runs;
  runs.reserve(dirs.size());
  for (const auto& dir : dirs) {
    runs.push_back(load_run_artifacts(dir, "report"));
  }

  std::ostringstream os;
  if (runs.size() == 1) {
    render_html_head(os, "DECOR run report");
    render_warning_block(os, collect_artifact_warnings(runs.front()));
    render_run_body(os, runs.front(), opts);
    os << "</body></html>\n";
    return os.str();
  }

  render_html_head(os, "DECOR aggregate report (" +
                           std::to_string(runs.size()) + " runs)");
  std::vector<std::pair<std::string, RunSummary>> summaries;
  std::vector<std::vector<ArtifactWarning>> warnings;
  std::size_t total_warnings = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    summaries.emplace_back(run_label(dirs[i], i), summarize_run(runs[i]));
    warnings.push_back(collect_artifact_warnings(runs[i]));
    total_warnings += warnings.back().size();
  }
  os << "<p>artifact warnings: " << total_warnings
     << " (per-run details below)</p>\n";

  os << "<h2>Runs</h2>\n"
     << "<table><tr><th>run</th><th>timeline samples</th>"
        "<th>converged</th><th>final covered</th><th>final alive</th>"
        "<th>field snaps</th><th>audit records</th><th>trace records</th>"
        "<th>warnings</th></tr>\n";
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const auto& [label, s] = summaries[i];
    os << "<tr><td><a href=\"#run-" << i << "\">" << html_escape(label)
       << "</a></td><td>" << s.timeline_samples << "</td><td>"
       << (s.convergence >= 0.0 ? fmt(s.convergence) + " s"
                                : std::string("never"))
       << "</td><td>"
       << (s.final_covered >= 0.0 ? fmt(s.final_covered * 100.0) + "%"
                                  : std::string("-"))
       << "</td><td>" << fmt(s.final_alive) << "</td><td>"
       << s.field_snapshots << "</td><td>" << s.audit_records
       << "</td><td>" << s.trace_records << "</td><td>"
       << warnings[i].size() << "</td></tr>\n";
  }
  os << "</table>\n";

  render_overlay_chart(os, summaries);

  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << "<hr><h1 id=\"run-" << i << "\">Run "
       << html_escape(summaries[i].first) << "</h1>\n";
    render_warning_block(os, warnings[i]);
    render_run_body(os, runs[i], opts);
  }
  os << "</body></html>\n";
  return os.str();
}

}  // namespace decor::core
