// Metric-by-metric comparison of two decor.bench.v1 documents.
//
// A bench document (bench/fig_common.hpp) is a set of SeriesTables:
// tables -> rows (one per x value) -> cells (one Summary per series).
// bench_diff flattens both documents into metric ids of the form
//
//   <table>[<x_name>=<x>].<series>
//
// and compares the per-cell means. The result powers `decor bench diff`,
// which turns the committed bench trajectory into an enforced perf gate:
// a %-delta table for humans, a nonzero exit beyond --fail-over for CI.
//
// Provenance (`meta`: git sha, compiler) is deliberately ignored — two
// documents diff by what they measured, not by who produced them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace decor::core {

struct BenchDiffEntry {
  /// Flattened metric id, e.g. "messages_per_cell[k=2].grid-small-cell".
  std::string metric;
  /// Mean of the metric in document A / document B.
  double a = 0.0;
  double b = 0.0;
  /// (b - a) / |a| * 100. Both zero -> 0; a zero with b nonzero ->
  /// +/-infinity (an appeared-from-nothing regression beats any finite
  /// threshold).
  double delta_pct = 0.0;
};

struct BenchDiffResult {
  /// Metrics present in both documents, in document-A order.
  std::vector<BenchDiffEntry> entries;
  /// Metric ids present in only one document (document order).
  std::vector<std::string> only_a;
  std::vector<std::string> only_b;

  /// Largest |delta_pct| over the common metrics (infinity when a metric
  /// appeared from or collapsed to zero); 0 when there are none.
  double max_abs_delta_pct() const noexcept;
  /// True when any common metric moved by more than `pct` percent.
  bool exceeds(double pct) const noexcept;
};

/// Diffs two parsed decor.bench.v1 documents. Returns nullopt when either
/// document lacks the decor.bench.v1 schema tag or a `tables` object.
std::optional<BenchDiffResult> bench_diff(const common::JsonValue& a,
                                          const common::JsonValue& b);

}  // namespace decor::core
