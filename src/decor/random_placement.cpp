#include "decor/random_placement.hpp"

#include "lds/random_points.hpp"

namespace decor::core {

DeploymentResult random_placement(Field& field, common::Rng& rng,
                                  EngineLimits limits) {
  const std::uint32_t k = field.params.k;
  auto& map = field.map;

  DeploymentResult result;
  result.initial_nodes = field.sensors.alive_count();
  result.rounds = 1;

  // Track the number of uncovered points incrementally: a full
  // fully_covered() scan per dart would make the long tail quadratic.
  std::size_t uncovered = map.uncovered_points(k).size();
  while (uncovered > 0 && result.placed_nodes < limits.max_new_nodes) {
    const geom::Point2 pos = lds::random_point(field.params.field, rng);
    // Count how many previously-uncovered points this dart fixes.
    map.index().for_each_in_disc(pos, field.params.rs, [&](std::size_t id) {
      if (map.kp(id) + 1 == k) --uncovered;
    });
    field.deploy(pos);
    ++result.placed_nodes;
    result.placements.push_back(pos);
    if (limits.on_place) limits.on_place(result.placed_nodes, map);
  }
  result.reached_full_coverage = (uncovered == 0);
  return result;
}

}  // namespace decor::core
