#include "decor/artifacts.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/require.hpp"

namespace decor::core {

namespace {

namespace fs = std::filesystem;

Artifact load_jsonl(const fs::path& path, const std::string& rel) {
  Artifact a;
  a.rel = rel;
  a.kind = "other";
  std::ifstream f(path);
  std::string line;
  bool first = true;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    auto parsed = common::parse_json(line);
    if (!parsed) {
      ++a.malformed;
      continue;
    }
    if (first) {
      first = false;
      if (const auto* schema = parsed->find("schema");
          schema != nullptr && schema->is_string()) {
        const std::string& s = schema->as_string();
        if (s == "decor.field.v1") a.kind = "field";
        if (s == "decor.timeline.v1") a.kind = "timeline";
        if (s == "decor.audit.v1") a.kind = "audit";
        if (s == "decor.metrics.v1") a.kind = "metrics-stream";
        a.header = std::move(*parsed);
        a.header_line = line;
        continue;
      }
      if (parsed->find("seq") != nullptr && parsed->find("kind") != nullptr) {
        a.kind = "trace";
      }
    }
    a.records.push_back(std::move(*parsed));
    a.lines.push_back(line);
  }
  return a;
}

Artifact load_document(const fs::path& path, const std::string& rel,
                       const std::string& kind) {
  Artifact a;
  a.rel = rel;
  a.kind = kind;
  std::ifstream f(path);
  std::stringstream buf;
  buf << f.rdbuf();
  auto parsed = common::parse_json(buf.str());
  if (parsed) {
    a.header = std::move(*parsed);
  } else {
    a.malformed = 1;
    a.kind = "other";
  }
  return a;
}

}  // namespace

std::vector<Artifact> load_run_artifacts(const std::string& dir,
                                         const std::string& context) {
  std::error_code ec;
  DECOR_REQUIRE_MSG(fs::is_directory(dir, ec),
                    context + ": not a readable directory: " + dir);

  std::vector<fs::path> paths;
  for (fs::recursive_directory_iterator
           it(dir, fs::directory_options::skip_permission_denied, ec),
       end;
       it != end; it.increment(ec)) {
    if (ec) break;
    if (it->is_regular_file(ec)) paths.push_back(it->path());
  }
  std::vector<std::pair<std::string, fs::path>> files;
  files.reserve(paths.size());
  for (const auto& p : paths) {
    files.emplace_back(fs::relative(p, dir, ec).generic_string(), p);
  }
  std::sort(files.begin(), files.end());

  std::vector<Artifact> artifacts;
  for (const auto& [rel, path] : files) {
    const std::string name = path.filename().string();
    if (name.size() > 6 && name.ends_with(".jsonl")) {
      artifacts.push_back(load_jsonl(path, rel));
    } else if (name == "manifest.json") {
      artifacts.push_back(load_document(path, rel, "manifest"));
    } else if (name == "metrics.json") {
      artifacts.push_back(load_document(path, rel, "metrics"));
    }
  }
  return artifacts;
}

std::vector<ArtifactWarning> collect_artifact_warnings(
    const std::vector<Artifact>& artifacts) {
  std::vector<ArtifactWarning> warnings;
  for (const auto& a : artifacts) {
    const bool document = a.kind == "manifest" || a.kind == "metrics";
    if (a.kind == "other" && a.records.empty()) {
      warnings.push_back({a.rel, a.malformed > 0 ? "unparseable" : "empty"});
      continue;
    }
    if (!document && a.records.empty()) {
      warnings.push_back({a.rel, "no records (empty or truncated)"});
      continue;
    }
    if (a.malformed > 0) {
      warnings.push_back({a.rel, std::to_string(a.malformed) +
                                     " malformed line" +
                                     (a.malformed == 1 ? "" : "s")});
    }
  }
  return warnings;
}

}  // namespace decor::core
