#include "decor/centralized.hpp"

#include <queue>

namespace decor::core {

namespace {

/// Max-heap entry: larger benefit first, then smaller point id (matching
/// the reference scan, which takes the first maximum in id order).
struct Candidate {
  std::uint64_t benefit;
  std::size_t point;
};
struct Worse {
  bool operator()(const Candidate& a, const Candidate& b) const noexcept {
    if (a.benefit != b.benefit) return a.benefit < b.benefit;
    return a.point > b.point;
  }
};

}  // namespace

DeploymentResult centralized_greedy(Field& field, EngineLimits limits) {
  const std::uint32_t k = field.params.k;
  auto& map = field.map;

  DeploymentResult result;
  result.initial_nodes = field.sensors.alive_count();
  result.rounds = 1;

  // Seed the queue with every currently-uncovered point. Coverage only
  // grows during the run, so no new candidates ever appear and covered
  // points can be dropped for good.
  std::priority_queue<Candidate, std::vector<Candidate>, Worse> queue;
  for (std::size_t id : map.uncovered_points(k)) {
    queue.push({map.benefit(map.index().point(id), k), id});
  }

  while (result.placed_nodes < limits.max_new_nodes && !queue.empty()) {
    const Candidate top = queue.top();
    queue.pop();
    if (map.kp(top.point) >= k) continue;  // covered since queued: drop
    const geom::Point2 pos = map.index().point(top.point);
    const std::uint64_t fresh = map.benefit(pos, k);
    if (fresh != top.benefit) {
      // Stale: re-queue with the current value; since benefits only
      // decrease, anything that survives to the top fresh is the argmax.
      queue.push({fresh, top.point});
      continue;
    }
    field.deploy(pos);
    ++result.placed_nodes;
    result.placements.push_back(pos);
    if (limits.on_place) limits.on_place(result.placed_nodes, map);
    // The selected point may still need more coverage (k > 1).
    if (map.kp(top.point) < k) {
      queue.push({map.benefit(pos, k), top.point});
    }
  }
  result.reached_full_coverage = map.fully_covered(k);
  return result;
}

DeploymentResult centralized_greedy_reference(Field& field,
                                              EngineLimits limits) {
  const std::uint32_t k = field.params.k;
  auto& map = field.map;

  DeploymentResult result;
  result.initial_nodes = field.sensors.alive_count();
  result.rounds = 1;

  while (result.placed_nodes < limits.max_new_nodes) {
    // Candidates are exactly the uncovered approximation points
    // (Algorithm 1 places new sensors *at* points of the set).
    const auto candidates = map.uncovered_points(k);
    if (candidates.empty()) {
      result.reached_full_coverage = true;
      break;
    }
    std::uint64_t best_benefit = 0;
    std::size_t best_point = candidates.front();
    for (std::size_t id : candidates) {
      const std::uint64_t b = map.benefit(map.index().point(id), k);
      if (b > best_benefit) {
        best_benefit = b;
        best_point = id;
      }
    }
    const geom::Point2 pos = map.index().point(best_point);
    field.deploy(pos);
    ++result.placed_nodes;
    result.placements.push_back(pos);
    if (limits.on_place) limits.on_place(result.placed_nodes, map);
  }
  if (!result.reached_full_coverage && map.fully_covered(k)) {
    result.reached_full_coverage = true;
  }
  return result;
}

}  // namespace decor::core
