#include "decor/centralized.hpp"

#include "coverage/benefit_index.hpp"

namespace decor::core {

DeploymentResult centralized_greedy(Field& field, EngineLimits limits) {
  const std::uint32_t k = field.params.k;
  auto& map = field.map;

  DeploymentResult result;
  result.initial_nodes = field.sensors.alive_count();
  result.rounds = 1;

  // The index seeds from the map's current counts (parallel bulk rebuild)
  // and thereafter tracks every placement with a 2*rs delta update, so
  // each iteration's arg-max is one lazy heap query instead of a rescan.
  coverage::BenefitIndex index(map, k, {}, 0,
                               coverage::ShardSpec{field.params.shards});

  if (index.num_shards() <= 1) {
    while (result.placed_nodes < limits.max_new_nodes) {
      const auto best = index.best();
      if (!best) break;  // every point k-covered
      const geom::Point2 pos = map.index().point(best->point);
      field.deploy(pos);
      index.add_disc(pos, map.rs());
      ++result.placed_nodes;
      result.placements.push_back(pos);
      if (limits.on_place) limits.on_place(result.placed_nodes, map);
    }
  } else {
    // Sharded drain: pull a conflict-free prefix of the greedy sequence,
    // deploy it, then land all its discs in one batched two-phase sweep
    // across shards. select_batch guarantees the prefix is exactly what
    // the sequential loop above would have placed, so the placement
    // sequence is byte-identical for every shard count.
    std::vector<coverage::BenefitIndex::DiscDelta> discs;
    while (result.placed_nodes < limits.max_new_nodes) {
      const auto batch = index.select_batch(
          map.rs(), limits.max_new_nodes - result.placed_nodes);
      if (batch.empty()) break;  // every point k-covered
      discs.clear();
      for (const auto& c : batch) {
        const geom::Point2 pos = map.index().point(c.point);
        field.deploy(pos);
        ++result.placed_nodes;
        result.placements.push_back(pos);
        if (limits.on_place) limits.on_place(result.placed_nodes, map);
        discs.push_back({pos, map.rs(), 1});
      }
      index.apply_discs(discs);
    }
  }
  result.reached_full_coverage = map.fully_covered(k);
  return result;
}

DeploymentResult centralized_greedy_reference(Field& field,
                                              EngineLimits limits) {
  const std::uint32_t k = field.params.k;
  auto& map = field.map;

  DeploymentResult result;
  result.initial_nodes = field.sensors.alive_count();
  result.rounds = 1;

  while (result.placed_nodes < limits.max_new_nodes) {
    // Candidates are exactly the uncovered approximation points
    // (Algorithm 1 places new sensors *at* points of the set).
    const auto candidates = map.uncovered_points(k);
    if (candidates.empty()) {
      result.reached_full_coverage = true;
      break;
    }
    std::uint64_t best_benefit = 0;
    std::size_t best_point = candidates.front();
    for (std::size_t id : candidates) {
      const std::uint64_t b = map.benefit(map.index().point(id), k);
      if (b > best_benefit) {
        best_benefit = b;
        best_point = id;
      }
    }
    const geom::Point2 pos = map.index().point(best_point);
    field.deploy(pos);
    ++result.placed_nodes;
    result.placements.push_back(pos);
    if (limits.on_place) limits.on_place(result.placed_nodes, map);
  }
  if (!result.reached_full_coverage && map.fully_covered(k)) {
    result.reached_full_coverage = true;
  }
  return result;
}

}  // namespace decor::core
