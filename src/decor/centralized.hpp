// Centralized greedy baseline (Section 4).
//
// The same benefit heuristic as DECOR (Equation 1) but with a global view:
// every iteration scans all uncovered approximation points, places a
// sensor at the point of maximum benefit, and repeats until the whole
// field is k-covered. The paper uses it as the quality upper bound that
// the distributed variants are compared against.
#pragma once

#include "common/rng.hpp"
#include "decor/deployment.hpp"
#include "decor/params.hpp"
#include "decor/point_field.hpp"

namespace decor::core {

/// Lazy-greedy implementation: because adding coverage can only shrink a
/// candidate's benefit (Equation 1 is monotone non-increasing in the
/// counts), a stale-priority queue that re-evaluates only the popped head
/// selects exactly the same argmax as a full rescan — typically ~50x
/// faster at paper scale. Tie-breaking (benefit desc, point id asc)
/// matches the reference implementation, so results are bit-identical.
DeploymentResult centralized_greedy(Field& field, EngineLimits limits = {});

/// Reference O(placements x candidates) rescan version; kept as the
/// oracle the lazy implementation is tested against.
DeploymentResult centralized_greedy_reference(Field& field,
                                              EngineLimits limits = {});

}  // namespace decor::core
