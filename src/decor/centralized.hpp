// Centralized greedy baseline (Section 4).
//
// The same benefit heuristic as DECOR (Equation 1) but with a global view:
// every iteration scans all uncovered approximation points, places a
// sensor at the point of maximum benefit, and repeats until the whole
// field is k-covered. The paper uses it as the quality upper bound that
// the distributed variants are compared against.
#pragma once

#include "common/rng.hpp"
#include "decor/deployment.hpp"
#include "decor/params.hpp"
#include "decor/point_field.hpp"

namespace decor::core {

/// Incremental implementation on coverage::BenefitIndex: benefits are
/// maintained as state (each placement delta-updates only the points
/// within 2*rs) and the arg-max comes from the index's lazy heap.
/// Tie-breaking (benefit desc, point id asc) matches the reference
/// implementation, so results are bit-identical — see
/// tests/benefit_index_test.cpp for the differential proof.
DeploymentResult centralized_greedy(Field& field, EngineLimits limits = {});

/// Reference O(placements x candidates) rescan version; kept as the
/// oracle the lazy implementation is tested against.
DeploymentResult centralized_greedy_reference(Field& field,
                                              EngineLimits limits = {});

}  // namespace decor::core
