#include "decor/engines.hpp"

#include <cmath>

#include "common/require.hpp"

namespace decor::core {

DeploymentResult run_engine(Scheme scheme, Field& field, common::Rng& rng,
                            EngineLimits limits) {
  switch (scheme) {
    case Scheme::kCentralized:
      return centralized_greedy(field, std::move(limits));
    case Scheme::kRandom:
      return random_placement(field, rng, std::move(limits));
    case Scheme::kGrid:
      return grid_decor(field, rng, std::move(limits));
    case Scheme::kVoronoi:
      return voronoi_decor(field, rng, std::move(limits));
  }
  DECOR_REQUIRE_MSG(false, "unknown scheme");
  return {};
}

std::vector<NamedConfig> decor_configs(const DecorParams& base) {
  std::vector<NamedConfig> out;

  DecorParams grid_small = base;
  grid_small.cell_side = 5.0;
  out.push_back({"grid-small-cell", Scheme::kGrid, grid_small});

  DecorParams grid_big = base;
  grid_big.cell_side = 10.0;
  out.push_back({"grid-big-cell", Scheme::kGrid, grid_big});

  DecorParams vor_small = base;
  vor_small.rc = 2.0 * base.rs;  // rc = 8 in the paper's setup
  out.push_back({"voronoi-small-rc", Scheme::kVoronoi, vor_small});

  DecorParams vor_big = base;
  vor_big.rc = 10.0 * std::sqrt(2.0);  // max inter-leader distance, 5x5 grid
  out.push_back({"voronoi-big-rc", Scheme::kVoronoi, vor_big});

  return out;
}

std::vector<NamedConfig> paper_configs(const DecorParams& base) {
  auto out = decor_configs(base);
  out.push_back({"centralized", Scheme::kCentralized, base});
  out.push_back({"random", Scheme::kRandom, base});
  return out;
}

}  // namespace decor::core
