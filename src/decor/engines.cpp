#include "decor/engines.hpp"

#include <cmath>

#include "common/metrics.hpp"
#include "common/require.hpp"

namespace decor::core {

namespace {

/// One counter update per engine run keeps the hot placement loops free
/// of instrumentation; the run totals already live in the result.
void publish_run_metrics(const DeploymentResult& result) {
  if (!common::metrics_enabled()) return;
  auto& m = common::metrics();
  static common::Counter& runs = m.counter("engine.runs");
  static common::Counter& placements = m.counter("engine.placements");
  static common::Counter& messages = m.counter("engine.messages");
  static common::Counter& rounds = m.counter("engine.rounds");
  runs.inc();
  placements.inc(result.placed_nodes);
  messages.inc(result.messages);
  rounds.inc(result.rounds);
}

}  // namespace

DeploymentResult run_engine(Scheme scheme, Field& field, common::Rng& rng,
                            EngineLimits limits) {
  DeploymentResult result;
  switch (scheme) {
    case Scheme::kCentralized:
      result = centralized_greedy(field, std::move(limits));
      break;
    case Scheme::kRandom:
      result = random_placement(field, rng, std::move(limits));
      break;
    case Scheme::kGrid:
      result = grid_decor(field, rng, std::move(limits));
      break;
    case Scheme::kVoronoi:
      result = voronoi_decor(field, rng, std::move(limits));
      break;
    default:
      DECOR_REQUIRE_MSG(false, "unknown scheme");
  }
  publish_run_metrics(result);
  return result;
}

std::vector<NamedConfig> decor_configs(const DecorParams& base) {
  std::vector<NamedConfig> out;

  DecorParams grid_small = base;
  grid_small.cell_side = 5.0;
  out.push_back({"grid-small-cell", Scheme::kGrid, grid_small});

  DecorParams grid_big = base;
  grid_big.cell_side = 10.0;
  out.push_back({"grid-big-cell", Scheme::kGrid, grid_big});

  DecorParams vor_small = base;
  vor_small.rc = 2.0 * base.rs;  // rc = 8 in the paper's setup
  out.push_back({"voronoi-small-rc", Scheme::kVoronoi, vor_small});

  DecorParams vor_big = base;
  vor_big.rc = 10.0 * std::sqrt(2.0);  // max inter-leader distance, 5x5 grid
  out.push_back({"voronoi-big-rc", Scheme::kVoronoi, vor_big});

  return out;
}

std::vector<NamedConfig> paper_configs(const DecorParams& base) {
  auto out = decor_configs(base);
  out.push_back({"centralized", Scheme::kCentralized, base});
  out.push_back({"random", Scheme::kRandom, base});
  return out;
}

}  // namespace decor::core
