// Deployment engine interface types.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "coverage/coverage_map.hpp"
#include "coverage/sensor.hpp"
#include "geometry/point.hpp"

namespace decor::core {

/// Budget and instrumentation for one engine run.
struct EngineLimits {
  /// Hard cap on new sensors; engines stop (without full coverage) when
  /// they hit it.
  std::size_t max_new_nodes = std::numeric_limits<std::size_t>::max();

  /// Invoked after every placement with the number placed so far; figure
  /// harnesses sample coverage curves through this.
  std::function<void(std::size_t placed, const coverage::CoverageMap&)>
      on_place;
};

/// Outcome of one deployment / restoration run.
struct DeploymentResult {
  /// Alive sensors before the engine ran.
  std::size_t initial_nodes = 0;
  /// Sensors the engine deployed.
  std::size_t placed_nodes = 0;
  /// True when every point reached k coverage within the budget.
  bool reached_full_coverage = false;

  /// Protocol messages attributable to the deployment (placement
  /// notifications, election bids, seeding requests). Zero for the
  /// centralized and random baselines.
  std::uint64_t messages = 0;

  /// Normalization denominators for the message-overhead metric: cells is
  /// the number of grid cells (grid scheme) or alive nodes (Voronoi).
  std::size_t cells = 1;

  /// Concurrent rounds the distributed engines took (1 for baselines).
  std::size_t rounds = 0;

  /// Positions deployed, in placement order.
  std::vector<geom::Point2> placements;

  std::size_t total_nodes() const noexcept {
    return initial_nodes + placed_nodes;
  }
  double messages_per_cell() const noexcept {
    return cells == 0 ? 0.0
                      : static_cast<double>(messages) /
                            static_cast<double>(cells);
  }
};

}  // namespace decor::core
