// Duty-cycled sleep scheduling on top of k-coverage.
//
// Section 1, motivation 3: "When k nodes are covering a point, we have
// the option of putting some of them to sleep or balance the workload
// among all k nodes. Thus, k-coverage leads to significant energy savings
// and increases the lifetime of the network." This module turns that into
// an operational policy: each epoch a greedy set cover selects a minimal
// awake subset that keeps every approximation point >= cover_k covered,
// preferring energy-rich sensors so the drain rotates across the spares.
#pragma once

#include <cstdint>
#include <vector>

#include "decor/point_field.hpp"

namespace decor::core {

struct SleepScheduleParams {
  /// Coverage level the awake subset must maintain (typically 1, while
  /// the deployment provides k >= 2 total).
  std::uint32_t cover_k = 1;
  /// Energy one awake epoch drains per node (sleepers pay nothing).
  double awake_cost = 1.0;
};

struct EpochPlan {
  /// Sensors selected to stay awake this epoch.
  std::vector<std::uint32_t> awake;
  /// False when even the full alive set cannot provide cover_k coverage —
  /// the network's lifetime (for this requirement) is over.
  bool feasible = false;
};

/// Plans one epoch: greedy set cover over the alive sensors ordered by
/// remaining energy (richest first). Does not modify the field.
EpochPlan plan_epoch(const Field& field, const std::vector<double>& energy,
                     const SleepScheduleParams& params = {});

struct LifetimeResult {
  /// Completed epochs before coverage became infeasible (or max_epochs).
  std::size_t epochs = 0;
  /// Mean awake-set size across epochs.
  double mean_awake = 0.0;
  /// True when the run stopped at max_epochs rather than on a hole.
  bool hit_epoch_limit = false;
};

/// Simulates duty-cycled operation: every epoch plans an awake set,
/// drains its batteries, and kills depleted sensors, until cover_k
/// coverage becomes impossible. `field` is modified (sensors die).
LifetimeResult simulate_lifetime(Field& field, double battery_capacity,
                                 std::size_t max_epochs,
                                 const SleepScheduleParams& params = {});

}  // namespace decor::core
