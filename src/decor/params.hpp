// Experiment and algorithm parameters.
//
// Defaults reproduce the paper's setup (Section 4): a 100x100 field
// approximated with 2000 Halton points, rs = 4, grid cells of 5x5 or
// 10x10, Voronoi communication radii 8 (= 2*rs) or 10*sqrt(2).
#pragma once

#include <cstdint>
#include <string>

#include "geometry/rect.hpp"

namespace decor::core {

/// How the field-approximation point set is generated.
enum class PointKind { kHalton, kHammersley, kRandom, kJittered };

/// Deployment algorithm family.
enum class Scheme { kCentralized, kRandom, kGrid, kVoronoi };

struct DecorParams {
  geom::Rect field = geom::make_rect(0.0, 0.0, 100.0, 100.0);

  /// Coverage requirement: every point must be covered by >= k sensors.
  std::uint32_t k = 3;

  /// Sensing radius rs.
  double rs = 4.0;

  /// Communication radius rc (Voronoi cell bound and protocol range);
  /// must satisfy rs <= rc.
  double rc = 8.0;

  /// Grid cell side (grid scheme).
  double cell_side = 5.0;

  /// Field approximation size.
  std::size_t num_points = 2000;
  PointKind point_kind = PointKind::kHalton;

  /// Shard count for the sharded BenefitIndex (mega-scale fields): the
  /// field is tiled into this many rectangles, each owning its points'
  /// benefits and heap. 1 (default) is the unsharded engine; 0 means one
  /// shard per hardware thread. Results are identical for every value —
  /// shards only change how the work is laid out.
  std::size_t shards = 1;

  /// Nonzero applies deterministic digit scrambling to the Halton /
  /// Hammersley generators.
  std::uint64_t scramble_seed = 0;
};

/// The named configurations evaluated in the paper's figures.
struct NamedConfig {
  std::string label;
  Scheme scheme;
  DecorParams params;
};

inline const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kCentralized: return "centralized";
    case Scheme::kRandom: return "random";
    case Scheme::kGrid: return "grid";
    case Scheme::kVoronoi: return "voronoi";
  }
  return "?";
}

inline const char* to_string(PointKind p) {
  switch (p) {
    case PointKind::kHalton: return "halton";
    case PointKind::kHammersley: return "hammersley";
    case PointKind::kRandom: return "random";
    case PointKind::kJittered: return "jittered";
  }
  return "?";
}

}  // namespace decor::core
