#include "decor/sim_runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <unordered_map>
#include <unordered_set>

#include "common/metrics.hpp"
#include "common/otlp.hpp"
#include "common/require.hpp"
#include "coverage/benefit_index.hpp"
#include "decor/point_field.hpp"
#include "net/leader_election.hpp"
#include "net/messages.hpp"
#include "sim/flight_recorder.hpp"

namespace decor::core {

namespace {
/// Exact-position keys: spawn positions are approximation-point
/// coordinates copied bit-for-bit, so double equality is reliable here.
struct PosKey {
  double x, y;
  bool operator==(const PosKey&) const = default;
};
struct PosKeyHash {
  std::size_t operator()(const PosKey& k) const noexcept {
    std::hash<double> h;
    return h(k.x) * 1000003u ^ h(k.y);
  }
};

}  // namespace

std::string otlp_span_name(std::string_view kind, std::string_view detail) {
  const auto pos = detail.find("kind=");
  if (pos != std::string_view::npos) {
    int mk = 0;
    for (std::size_t i = pos + 5; i < detail.size(); ++i) {
      const char c = detail[i];
      if (c < '0' || c > '9') break;
      mk = mk * 10 + (c - '0');
    }
    if (const char* name = net::msg_kind_name(mk)) {
      return std::string("msg.") + name;
    }
  }
  return std::string(kind);
}

struct GridSimHarness::Shared {
  DecorParams params;
  geom::GridPartition partition;
  double rc_protocol = 0.0;
  double placement_interval = 0.5;
  double seed_check_interval = 5.0;
  double silence_threshold = 5.0;
  net::HeartbeatParams heartbeat;
  net::ElectionParams election;
  bool enable_arq = true;
  net::ReliableLinkParams arq;
  net::DataPlaneParams data_plane;
  GridSimHarness* harness = nullptr;
  const geom::PointGridIndex* points = nullptr;
  /// Placement audit sink, or nullptr when auditing is off. Nodes only
  /// pre-mint kPlacement trace ids when auditing, so non-audited runs
  /// keep their exact pre-audit trace-id sequences.
  sim::AuditLog* audit = nullptr;

  /// Per-world ARQ accounting every node's link feeds (simulation is
  /// single-threaded; surfaced through SimRunResult).
  net::ArqStats arq_stats;
  /// Per-world data-plane accounting (zeros unless the data plane runs).
  net::DataPlaneStats data_stats;
  /// Cell -> id of the node that most recently became that cell's leader
  /// (self-registration; used only for chaos targeting). Ordered so the
  /// leader-kill picks deterministically.
  std::map<std::uint32_t, std::uint32_t> cell_leader;

  // Per-cell point ids and the inverse maps (cell/slot of each point) —
  // static field knowledge every node shares (the point set is generated
  // deterministically, Section 3.2).
  std::vector<std::vector<std::uint32_t>> cell_points;
  std::vector<std::uint32_t> point_cell;
  std::vector<std::uint32_t> point_slot;

  Shared(const DecorParams& p, double rc, const SimRunConfig& cfg)
      : params(p),
        partition(p.field, p.cell_side),
        rc_protocol(rc),
        placement_interval(cfg.placement_interval),
        seed_check_interval(cfg.seed_check_interval),
        silence_threshold(cfg.heartbeat.period * cfg.heartbeat.timeout_periods +
                          1.0),
        heartbeat(cfg.heartbeat),
        election(cfg.election),
        enable_arq(cfg.enable_arq),
        arq(cfg.arq),
        data_plane(cfg.data_plane) {}

  void index_points(const geom::PointGridIndex& index) {
    points = &index;
    cell_points.assign(partition.num_cells(), {});
    point_cell.resize(index.size());
    point_slot.resize(index.size());
    for (std::size_t id = 0; id < index.size(); ++id) {
      const auto c =
          static_cast<std::uint32_t>(partition.cell_of(index.point(id)));
      point_cell[id] = c;
      point_slot[id] =
          static_cast<std::uint32_t>(cell_points[c].size());
      cell_points[c].push_back(static_cast<std::uint32_t>(id));
    }
  }
};

namespace {

class DecorGridSimNode final : public net::SensorNode {
 public:
  using Shared = GridSimHarness::Shared;

  explicit DecorGridSimNode(std::shared_ptr<Shared> shared)
      : net::SensorNode(make_node_params(*shared)), shared_(std::move(shared)) {
    set_arq_stats(&shared_->arq_stats);
    set_data_stats(&shared_->data_stats);
  }

  void on_start() override {
    cell_ = static_cast<std::uint32_t>(shared_->partition.cell_of(pos()));
    net::SensorNode::on_start();
    election_ = std::make_unique<net::LeaderElection>(*this, cell_,
                                                      shared_->election);
    election_->start(
        [this](const net::ElectPayload& p) {
          // Bids stay best-effort: every member bids each term and a
          // lost bid only biases one rotation, never correctness.
          broadcast(sim::Message::make(id(), net::kElect, p,
                                       net::wire_size(net::kElect)),
                    params_.rc);
        },
        [this](const net::LeaderPayload& p) {
          // The winner announcement is control plane: a member that
          // misses it self-elects and splits the cell, so it is ARQed.
          broadcast_reliable(sim::Message::make(
              id(), net::kLeader, p, net::wire_size(net::kLeader)));
        },
        [this](std::uint32_t, bool is_self) {
          if (is_self) became_leader();
        });
  }

  /// Invariant-monitor probes (the monitor's leader-uniqueness check
  /// counts converged leaders across the alive population).
  bool is_cell_leader() const noexcept {
    return election_ != nullptr && election_->is_leader();
  }
  std::uint32_t cell() const noexcept { return cell_; }

 protected:
  std::uint32_t heartbeat_cell() const override { return cell_; }

  void handle_message(const sim::Message& msg) override {
    switch (msg.kind) {
      case net::kHeartbeat:
        note_cell(msg.as<net::HeartbeatPayload>().cell);
        break;
      case net::kElect: {
        const auto& p = msg.as<net::ElectPayload>();
        note_cell(p.cell);
        election_->on_elect(msg.src, p);
        break;
      }
      case net::kLeader: {
        const auto& p = msg.as<net::LeaderPayload>();
        note_cell(p.cell);
        election_->on_leader_msg(msg.src, p);
        break;
      }
      case net::kCoverageQuery: {
        const auto& q = msg.as<net::CoverageQueryPayload>();
        if (q.cell == cell_) break;  // own cell: nothing to replay
        // Replay our placements whose discs reach the querier's cell so
        // its new leader does not re-cover them.
        const auto target = shared_->partition.rect_of(q.cell);
        for (const auto& [key, count] : my_placements_) {
          const geom::Point2 p{key.x, key.y};
          if (!target.intersects_disc(p, shared_->params.rs)) continue;
          for (std::uint32_t c = 0; c < count; ++c) {
            // The querier bootstraps its belief from these replays; a
            // lost one would re-cover the point, so each is ARQed.
            send_reliable(msg.src,
                          sim::Message::make(
                              id(), net::kPlacement,
                              net::PlacementPayload{p, cell_},
                              net::wire_size(net::kPlacement)));
          }
        }
        break;
      }
      case net::kPlacement: {
        const auto& p = msg.as<net::PlacementPayload>();
        note_cell(p.origin_cell);
        if (p.origin_cell == cell_) break;  // in-cell nodes arrive via HELLO
        // Remember cross-boundary deployments that can cover our points.
        if (shared_->partition.rect_of(cell_).intersects_disc(
                p.pos, shared_->params.rs)) {
          ++notices_[PosKey{p.pos.x, p.pos.y}];
        }
        break;
      }
      default:
        break;
    }
  }

  void on_neighbor_failed(std::uint32_t /*id*/,
                          geom::Point2 last_pos) override {
    // The device at last_pos is gone: retire one per-device claim there
    // (an unheard deployment of ours for in-cell positions, a placement
    // notice for cross-boundary ones). Claims outlive the neighbor
    // table, so without this a sole-member cell — where leadership never
    // rotates to a fresh belief — keeps the dead node's coverage as a
    // phantom and the hole never heals.
    const PosKey key{last_pos.x, last_pos.y};
    if (shared_->partition.cell_of(last_pos) == cell_) {
      if (auto it = my_placements_.find(key); it != my_placements_.end()) {
        if (--it->second == 0) my_placements_.erase(it);
      }
      // A dead in-cell sensor may have opened a hole; the leader
      // re-checks.
      if (election_ && election_->is_leader()) ensure_loop();
    } else if (auto it = notices_.find(key); it != notices_.end()) {
      if (--it->second == 0) notices_.erase(it);
      if (election_ && election_->is_leader()) ensure_loop();
    }
  }

 private:
  static net::SensorNodeParams make_node_params(const Shared& shared) {
    net::SensorNodeParams p;
    p.rc = shared.rc_protocol;
    p.heartbeat = shared.heartbeat;
    p.enable_arq = shared.enable_arq;
    p.arq = shared.arq;
    p.data_plane = shared.data_plane;
    return p;
  }

  void note_cell(std::uint32_t cell) {
    cell_last_heard_[cell] = world().sim().now();
    // Hearing from a cell re-arms seeding: if the cell later dies again
    // (a second disaster), it can be re-seeded.
    seeded_cells_.erase(cell);
  }

  void became_leader() {
    shared_->cell_leader[cell_] = id();  // chaos-targeting registry
    // A fresh leader may have missed earlier cross-boundary placements
    // (it could have been deployed after they were announced): query the
    // neighborhood once; established leaders replay what they placed
    // into our area (Section 3.3's boundary-information exchange).
    if (!queried_neighbors_) {
      queried_neighbors_ = true;
      broadcast_reliable(sim::Message::make(
          id(), net::kCoverageQuery, net::CoverageQueryPayload{cell_},
          net::wire_size(net::kCoverageQuery)));
    }
    ensure_loop();
    if (!seed_loop_active_) {
      seed_loop_active_ = true;
      // Random phase staggers the checks across leaders so a silent cell
      // is usually seeded once: the first seeder's heartbeats reach the
      // other candidates before their own checks fire.
      const double phase =
          world().rng().uniform(0.0, shared_->seed_check_interval);
      set_timer(shared_->seed_check_interval + phase,
                [this] { seed_check(); });
    }
  }

  void ensure_loop() {
    if (loop_active_) return;
    loop_active_ = true;
    set_timer(shared_->placement_interval, [this] { placement_tick(); });
  }

  /// The leader's belief of its cell's coverage, rebuilt from what it can
  /// hear: itself, in-cell neighbors, its own not-yet-heard deployments
  /// and the cross-boundary placement notices. Multiplicity matters —
  /// k-coverage routinely stacks several sensors on the same point — so
  /// contributors are counted per entity, never deduped by position.
  std::vector<std::uint32_t> local_counts() const {
    const auto& cell_pts = shared_->cell_points[cell_];
    std::vector<std::uint32_t> counts(cell_pts.size(), 0);

    std::vector<std::pair<geom::Point2, std::uint32_t>> contributors;
    contributors.emplace_back(pos(), 1);

    // In-cell neighbors, each a distinct device (table is keyed by id).
    std::unordered_map<PosKey, std::uint32_t, PosKeyHash> heard_at;
    for (const auto& [nid, entry] : table_.snapshot()) {
      (void)nid;
      if (shared_->partition.cell_of(entry.pos) != cell_) continue;
      contributors.emplace_back(entry.pos, 1);
      ++heard_at[PosKey{entry.pos.x, entry.pos.y}];
    }
    // Deployments of ours the table has not confirmed yet (their HELLO is
    // still in flight): count the surplus over what we already hear.
    for (const auto& [key, placed] : my_placements_) {
      const auto it = heard_at.find(key);
      const std::uint32_t heard = it == heard_at.end() ? 0 : it->second;
      if (placed > heard) {
        contributors.emplace_back(geom::Point2{key.x, key.y},
                                  placed - heard);
      }
    }
    // Cross-boundary notices: one per placement message, multiplicity
    // preserved (out-of-cell nodes never appear in the in-cell set).
    for (const auto& [key, n] : notices_) {
      contributors.emplace_back(geom::Point2{key.x, key.y}, n);
    }

    for (const auto& [c, mult] : contributors) {
      shared_->points->for_each_in_disc(
          c, shared_->params.rs, [&](std::size_t pid) {
            if (shared_->point_cell[pid] == cell_) {
              counts[shared_->point_slot[pid]] += mult;
            }
          });
    }
    return counts;
  }

  void placement_tick() {
    if (!election_ || !election_->is_leader()) {
      loop_active_ = false;
      return;
    }
    const auto counts = local_counts();
    const auto& cell_pts = shared_->cell_points[cell_];

    // Max-benefit uncovered point of this cell (Algorithm 1): Equation 1
    // over the leader's belief, restricted to the points it owns.
    const auto choice = coverage::BenefitIndex::choose_believed(
        *shared_->points, shared_->params.rs, shared_->params.k, cell_pts,
        [&](std::size_t pid) -> std::optional<std::uint32_t> {
          if (shared_->point_cell[pid] != cell_) return std::nullopt;
          return counts[shared_->point_slot[pid]];
        });
    if (!choice) {
      loop_active_ = false;  // cell satisfied; failures re-arm the loop
      return;
    }
    const auto& best = choice->best;
    const geom::Point2 best_pos = shared_->points->point(best.point);
    ++my_placements_[PosKey{best_pos.x, best_pos.y}];
    shared_->harness->spawn_node(best_pos);
    // A lost placement notification makes adjacent leaders re-cover the
    // boundary, so it is ARQed to every known neighbor; receiver-side
    // dedup keeps retransmissions from inflating notice multiplicity.
    auto msg = sim::Message::make(id(), net::kPlacement,
                                  net::PlacementPayload{best_pos, cell_},
                                  net::wire_size(net::kPlacement));
    if (shared_->audit != nullptr) {
      // Pre-mint the exchange's trace id so the audit row joins onto the
      // causal trace of its own announcement (send paths mint only when
      // the id is still zero).
      msg.trace_id = world().mint_trace_id();
      std::uint64_t newly = 0;
      shared_->points->for_each_in_disc(
          best_pos, shared_->params.rs, [&](std::size_t pid) {
            if (shared_->point_cell[pid] != cell_) return;
            if (counts[shared_->point_slot[pid]] + 1 == shared_->params.k) {
              ++newly;
            }
          });
      shared_->audit->record({world().sim().now(), id(), cell_, "benefit",
                              best.point, best_pos, best.benefit,
                              choice->runner_up, choice->scanned, newly,
                              msg.trace_id});
    }
    broadcast_reliable(msg);
    set_timer(shared_->placement_interval, [this] { placement_tick(); });
  }

  void seed_check() {
    if (!election_ || !election_->is_leader()) {
      seed_loop_active_ = false;
      return;
    }
    const sim::Time now = world().sim().now();
    for (std::size_t nb : shared_->partition.neighbors_of(cell_)) {
      const auto c = static_cast<std::uint32_t>(nb);
      if (shared_->cell_points[c].empty()) continue;
      if (seeded_cells_.count(c) != 0) continue;
      const auto it = cell_last_heard_.find(c);
      const sim::Time last = it == cell_last_heard_.end() ? 0.0 : it->second;
      if (now - last <= shared_->silence_threshold) continue;
      // The adjacent cell is silent: deploy a starter node near its
      // center; its heartbeats will stop other leaders from re-seeding.
      const geom::Point2 center = shared_->partition.rect_of(c).center();
      double best_d = 0.0;
      geom::Point2 pos{};
      std::uint32_t best_pid = 0;
      bool found = false;
      for (std::uint32_t pid : shared_->cell_points[c]) {
        const auto p = shared_->points->point(pid);
        const double d2 = geom::distance_sq(p, center);
        if (!found || d2 < best_d) {
          best_d = d2;
          pos = p;
          best_pid = pid;
          found = true;
        }
      }
      if (!found) continue;
      seeded_cells_.insert(c);
      shared_->harness->spawn_node(pos);
      // Cross-cell seed probe: peers must learn the cell was seeded or
      // several leaders seed it concurrently — ARQed like placements.
      auto msg = sim::Message::make(id(), net::kPlacement,
                                    net::PlacementPayload{pos, c},
                                    net::wire_size(net::kPlacement));
      if (shared_->audit != nullptr) {
        msg.trace_id = world().mint_trace_id();
        // No benefit scan backs a seed and the seeding leader holds no
        // belief about the silent cell, so the decision-context fields
        // stay zero.
        shared_->audit->record({now, id(), static_cast<std::int64_t>(c),
                                "seed", best_pid, pos, 0, 0, 0, 0,
                                msg.trace_id});
      }
      broadcast_reliable(msg);
    }
    set_timer(shared_->seed_check_interval, [this] { seed_check(); });
  }

  std::shared_ptr<Shared> shared_;
  std::uint32_t cell_ = 0;
  std::unique_ptr<net::LeaderElection> election_;
  std::unordered_map<PosKey, std::uint32_t, PosKeyHash> notices_;
  std::unordered_map<PosKey, std::uint32_t, PosKeyHash> my_placements_;
  std::unordered_map<std::uint32_t, sim::Time> cell_last_heard_;
  std::unordered_set<std::uint32_t> seeded_cells_;
  bool loop_active_ = false;
  bool seed_loop_active_ = false;
  bool queried_neighbors_ = false;
};

}  // namespace

GridSimHarness::GridSimHarness(SimRunConfig cfg) : cfg_(std::move(cfg)) {
  // A fault campaign implies reboots are possible: the ARQ must re-open
  // its dedup window when it gives a peer up for dead, or the rebooted
  // incarnation's fresh traffic is swallowed as duplicates. Applied
  // before Shared copies the params so every node inherits it.
  if (!cfg_.fault_plan.empty()) cfg_.arq.purge_on_give_up = true;
  const auto& p = cfg_.params;
  // Protocol range: must span a cell (intra-cell connectivity assumption)
  // and reach leaders of adjacent cells (up to two cell diagonals away).
  const double rc_protocol =
      std::max(p.rc, 2.0 * p.cell_side * std::numbers::sqrt2);
  world_ = std::make_unique<sim::World>(p.field, cfg_.radio, cfg_.seed,
                                        rc_protocol);
  // Every producer publishes on the harness bus, so extra sinks (live
  // stream, OTLP) see all streams; attach must precede any open_jsonl.
  world_->trace().attach_bus(&bus_);
  timeline_.attach_bus(&bus_);
  audit_.attach_bus(&bus_);
  metrics_snap_.attach_bus(&bus_);
  if (!cfg_.telemetry_stream.empty()) {
    auto stream = std::make_unique<common::FrameStreamSink>(
        cfg_.telemetry_stream);
    DECOR_REQUIRE_MSG(stream->ok(), "cannot open telemetry stream: " +
                                        cfg_.telemetry_stream);
    telemetry_sink_ = stream.get();
    bus_.add_sink(std::move(stream));
  }
  if (!cfg_.otlp.empty()) {
    auto otlp = std::make_unique<common::OtlpSink>(cfg_.otlp);
    otlp->set_span_namer([](std::string_view kind, std::string_view detail) {
      return otlp_span_name(kind, detail);
    });
    bus_.add_sink(std::move(otlp));
    // Spans are built from trace causality ids, so the exporter implies
    // trace recording even when --trace was not given.
    world_->trace().enable(true);
  }
  if (cfg_.trace_capacity > 0) {
    world_->trace().set_capacity(cfg_.trace_capacity);
  }
  if (!cfg_.trace_jsonl.empty()) {
    // An unopenable sink is a fatal misconfiguration: silently running
    // without the dump the caller asked for wastes the whole run.
    DECOR_REQUIRE_MSG(world_->trace().open_jsonl(cfg_.trace_jsonl),
                      "cannot open trace JSONL sink: " + cfg_.trace_jsonl);
  }
  if (cfg_.trace || !cfg_.trace_jsonl.empty()) world_->trace().enable(true);
  if (!cfg_.timeline_jsonl.empty()) {
    DECOR_REQUIRE_MSG(timeline_.open_jsonl(cfg_.timeline_jsonl),
                      "cannot open timeline JSONL sink: " + cfg_.timeline_jsonl);
  }
  if (!cfg_.flight_dir.empty()) {
    // Same fail-fast contract as the JSONL sinks: discovering at dump
    // time that the post-mortem directory is unwritable loses the
    // evidence the caller asked to keep.
    DECOR_REQUIRE_MSG(sim::prepare_flight_dir(cfg_.flight_dir),
                      "cannot write flight dir: " + cfg_.flight_dir);
  }
  common::Rng point_rng(cfg_.seed ^ 0x5eedbeefULL);
  map_ = std::make_unique<coverage::CoverageMap>(
      p.field, make_points(p, point_rng), p.rs);
  if (cfg_.field_interval > 0.0 || !cfg_.field_jsonl.empty()) {
    const std::size_t side =
        cfg_.field_raster > 0
            ? cfg_.field_raster
            : coverage::FieldRecorder::default_raster(p.field, p.rs);
    field_ = std::make_unique<coverage::FieldRecorder>(p.field, p.k, side,
                                                       side);
    field_->attach_bus(&bus_);
    if (!cfg_.field_jsonl.empty()) {
      DECOR_REQUIRE_MSG(field_->open_jsonl(cfg_.field_jsonl),
                        "cannot open field JSONL sink: " + cfg_.field_jsonl);
    }
  }
  if (!cfg_.audit_jsonl.empty()) {
    DECOR_REQUIRE_MSG(audit_.open_jsonl(cfg_.audit_jsonl),
                      "cannot open audit JSONL sink: " + cfg_.audit_jsonl);
  }
  if (!cfg_.metrics_jsonl.empty()) {
    DECOR_REQUIRE_MSG(metrics_snap_.open_jsonl(cfg_.metrics_jsonl),
                      "cannot open metrics JSONL sink: " + cfg_.metrics_jsonl);
  }
  shared_ = std::make_shared<Shared>(p, rc_protocol, cfg_);
  shared_->harness = this;
  if (cfg_.audit || !cfg_.audit_jsonl.empty()) shared_->audit = &audit_;
  shared_->index_points(map_->index());
  if (!cfg_.fault_plan.empty()) {
    sim::FaultInjector::Hooks hooks;
    hooks.kill = [this](std::uint32_t id) { kill_node(id); };
    hooks.reboot = [this](std::uint32_t id) { reboot_node(id); };
    const bool has_sink = cfg_.data_plane.enabled;
    const std::uint32_t sink = cfg_.data_plane.sink;
    hooks.is_protected = [has_sink, sink](std::uint32_t id) {
      return has_sink && id == sink;
    };
    hooks.sink = sink;
    hooks.has_sink = has_sink;
    injector_ = std::make_unique<sim::FaultInjector>(*world_, cfg_.fault_plan,
                                                     std::move(hooks));
    injector_->arm();
  }
  if (cfg_.invariant_interval > 0.0) register_invariants();
}

void GridSimHarness::register_invariants() {
  // (1) Ground-truth coverage consistency: the CoverageMap must credit
  // exactly the alive population — a disc left behind by a kill, or
  // missing after a reboot, shows up as a count mismatch here.
  monitor_.add_check("coverage-alive", [this]() -> std::optional<std::string> {
    const auto& idx = map_->index();
    std::vector<std::uint32_t> counts(idx.size(), 0);
    for (std::uint32_t id : world_->alive_ids()) {
      idx.for_each_in_disc(world_->position(id), cfg_.params.rs,
                           [&](std::size_t pid) { ++counts[pid]; });
    }
    std::size_t covered = 0;
    for (auto c : counts) {
      if (c >= cfg_.params.k) ++covered;
    }
    const std::size_t believed = map_->num_covered(cfg_.params.k);
    if (covered != believed) {
      return "alive nodes cover " + std::to_string(covered) +
             " points but the map credits " + std::to_string(believed);
    }
    return std::nullopt;
  });
  // (2) Leader uniqueness: after quiet periods every cell converges to
  // at most one leader. Transient splits are legal (that is what term
  // rotation reconciles), so a conflict only becomes a violation once it
  // outlives a full election term; checks are suspended outright while a
  // partition is installed (split-brain is *expected* across a cut).
  monitor_.add_check("single-leader-per-cell",
                     [this]() -> std::optional<std::string> {
    if (injector_ && injector_->partition_active()) {
      leader_conflict_since_.clear();
      return std::nullopt;
    }
    std::map<std::uint32_t, std::uint32_t> leaders;
    for (std::uint32_t id : world_->alive_ids()) {
      if (auto* n = dynamic_cast<DecorGridSimNode*>(&world_->node(id))) {
        if (n->is_cell_leader()) ++leaders[n->cell()];
      }
    }
    const double now = world_->sim().now();
    const double grace = cfg_.election.term_duration + 5.0;
    std::optional<std::string> verdict;
    std::map<std::uint32_t, double> still;
    for (const auto& [cell, n] : leaders) {
      if (n <= 1) continue;
      const auto it = leader_conflict_since_.find(cell);
      const double since =
          it == leader_conflict_since_.end() ? now : it->second;
      still[cell] = since;
      if (now - since > grace && !verdict) {
        verdict = "cell " + std::to_string(cell) + " held " +
                  std::to_string(n) + " leaders for over " +
                  std::to_string(grace) + "s";
      }
    }
    leader_conflict_since_ = std::move(still);
    return verdict;
  });
  // (3) ArqStats conservation: every reliable send must end up exactly
  // once in completed / failed / abandoned or still be pending on an
  // alive link. Dead links were drained into `abandoned` by host_died().
  monitor_.add_check("arq-conservation",
                     [this]() -> std::optional<std::string> {
    const auto& a = shared_->arq_stats;
    std::uint64_t in_flight = 0;
    for (std::uint32_t id : world_->alive_ids()) {
      if (auto* sn = dynamic_cast<net::SensorNode*>(&world_->node(id))) {
        if (auto* l = sn->link()) in_flight += l->in_flight();
      }
    }
    const std::uint64_t accounted =
        a.completed + a.failed + a.abandoned + in_flight;
    if (a.sent != accounted) {
      return "sent=" + std::to_string(a.sent) + " but completed+failed+" +
             "abandoned+in_flight=" + std::to_string(accounted);
    }
    return std::nullopt;
  });
  // (4) Goodput bound: the sink can never deliver more unique readings
  // than the field originated (dedup or incarnation bookkeeping broke if
  // it does). Trivially true while the data plane is off.
  monitor_.add_check("goodput-bound", [this]() -> std::optional<std::string> {
    const auto& d = shared_->data_stats;
    if (d.readings_delivered > d.readings_originated) {
      return "delivered " + std::to_string(d.readings_delivered) +
             " unique readings but only " +
             std::to_string(d.readings_originated) + " were originated";
    }
    return std::nullopt;
  });
  monitor_.set_on_first_violation(
      [this](const std::string& name, const std::string& detail) {
        if (!cfg_.flight_dir.empty()) {
          dump_flight_bundle("invariant", name + ": " + detail);
        }
      });
}

GridSimHarness::~GridSimHarness() = default;

const geom::GridPartition& GridSimHarness::partition() const noexcept {
  return shared_->partition;
}

std::uint32_t GridSimHarness::spawn_node(geom::Point2 pos) {
  const auto id =
      world_->spawn(pos, std::make_unique<DecorGridSimNode>(shared_));
  map_->add_disc(pos);
  if (initial_deployed_) placements_.push_back(pos);
  return id;
}

void GridSimHarness::kill_node(std::uint32_t id) {
  if (!world_->alive(id)) return;
  const auto pos = world_->position(id);
  world_->kill(id);
  map_->remove_disc(pos);
}

void GridSimHarness::reboot_node(std::uint32_t id) {
  if (world_->alive(id)) return;
  world_->reboot(id, std::make_unique<DecorGridSimNode>(shared_));
  map_->add_disc(world_->position(id));
}

void GridSimHarness::schedule_leader_kill(double at) {
  world_->sim().schedule_at(at, [this] {
    for (const auto& [cell, id] : shared_->cell_leader) {
      (void)cell;
      if (world_->alive(id)) {
        kill_node(id);
        return;
      }
    }
  });
}

void GridSimHarness::schedule_random_kills(double at, std::size_t count) {
  world_->sim().schedule_at(at, [this, count] {
    auto alive = world_->alive_ids();
    // The data-plane sink is infrastructure (the base station): random
    // chaos must never take it down — only an explicit sink_outage fault
    // event may. Filtered before sampling so the exclusion is
    // deterministic, not a retry.
    if (cfg_.data_plane.enabled) std::erase(alive, cfg_.data_plane.sink);
    const auto picks =
        world_->rng().sample_indices(alive.size(),
                                     std::min(count, alive.size()));
    for (std::size_t idx : picks) kill_node(alive[idx]);
  });
}

sim::TimelineSample GridSimHarness::sample_timeline() {
  sim::TimelineSample s;
  s.t = world_->sim().now();
  s.covered_fraction = map_->fraction_covered(cfg_.params.k);
  s.uncovered_points = static_cast<std::uint64_t>(
      map_->num_points() - map_->num_covered(cfg_.params.k));
  s.alive_nodes = world_->alive_count();
  std::uint64_t in_flight = 0;
  for (std::uint32_t id : world_->alive_ids()) {
    if (auto* sn = dynamic_cast<net::SensorNode*>(&world_->node(id))) {
      if (auto* l = sn->link()) in_flight += l->in_flight();
    }
  }
  s.arq_in_flight = in_flight;
  std::string leaders;
  for (const auto& [cell, id] : shared_->cell_leader) {
    if (!world_->alive(id)) continue;
    if (!leaders.empty()) leaders += ' ';
    leaders += std::to_string(cell);
    leaders += ':';
    leaders += std::to_string(id);
  }
  s.leaders = std::move(leaders);
  if (cfg_.data_plane.enabled) {
    s.has_readings = true;
    s.readings_delivered = shared_->data_stats.readings_delivered;
    s.reading_bytes = shared_->data_stats.bytes_delivered;
  }
  if (monitor_.active()) {
    s.has_invariants = true;
    s.invariant_violations = monitor_.violations();
  }
  if (cfg_.timeline_arq) {
    s.has_arq_detail = true;
    s.arq_sent = shared_->arq_stats.sent;
    s.arq_retx = shared_->arq_stats.retx;
  }
  return s;
}

void GridSimHarness::dump_flight_bundle(const std::string& reason,
                                        const std::string& detail) {
  sim::FlightBundleInfo info;
  info.reason = reason;
  info.sim_time = world_->sim().now();
  info.scheme = "grid";
  info.detail = detail;
  if (injector_) info.faults_json = injector_->manifest_json();
  if (field_ != nullptr) {
    info.field_jsonl = field_->header_json() + "\n";
    if (const auto* s = field_->latest()) {
      info.field_jsonl += coverage::FieldRecorder::snapshot_json(*s) + "\n";
    }
  }
  if (metrics_snap_.snapshots_taken() > 0) {
    info.metrics_jsonl = "{\"schema\":\"decor.metrics.v1\"}\n";
    for (const auto& line : metrics_snap_.tail()) {
      info.metrics_jsonl += line + "\n";
    }
  }
  sim::write_flight_bundle(cfg_.flight_dir, info, world_->trace(),
                           &timeline_);
}

SimRunResult GridSimHarness::run() {
  if (!initial_deployed_) {
    for (const auto& pos : cfg_.initial_positions) spawn_node(pos);
    initial_nodes_ = cfg_.initial_positions.size();
    initial_deployed_ = true;
  }
  if (cfg_.timeline_interval > 0.0 && !timeline_.active()) {
    timeline_.start(world_->sim(), cfg_.timeline_interval,
                    [this] { return sample_timeline(); });
  }
  if (cfg_.invariant_interval > 0.0 && !monitor_.active()) {
    monitor_.start(world_->sim(), cfg_.invariant_interval);
  }
  if ((cfg_.metrics_interval > 0.0 || !cfg_.metrics_jsonl.empty()) &&
      !metrics_snap_.active()) {
    // Path-only configs ride the timeline cadence (then 1s) so the two
    // series line up sample-for-sample.
    const double every =
        cfg_.metrics_interval > 0.0
            ? cfg_.metrics_interval
            : (cfg_.timeline_interval > 0.0 ? cfg_.timeline_interval : 1.0);
    metrics_snap_.start(world_->sim(), every);
  }

  SimRunResult result;
  result.initial_nodes = initial_nodes_;
  const std::size_t placements_before = placements_.size();

  // Poll ground truth; stop as soon as the field is fully covered. The
  // closure owns its state through shared_ptrs so a poll left pending
  // after a timed-out run stays safe to execute on a later resume.
  struct PollState {
    double finish_time;
    bool covered = false;
  };
  auto state = std::make_shared<PollState>(PollState{cfg_.run_time, false});
  auto poll = std::make_shared<std::function<void()>>();
  // The closure holds itself only weakly: no ownership cycle, and a poll
  // left pending after a timed-out run degrades to a no-op on resume.
  std::weak_ptr<std::function<void()>> weak_poll = poll;
  *poll = [this, state, weak_poll] {
    if (map_->fully_covered(cfg_.params.k)) {
      state->covered = true;
      state->finish_time = world_->sim().now();
      // The milestone lands in the trace so a dump alone (without the
      // harness result) still yields the convergence time, and on the
      // timeline so its convergence query sees a zero-uncovered sample.
      world_->trace().record(world_->sim().now(), sim::TraceKind::kProtocol,
                             0, "converged");
      if (timeline_.active()) timeline_.sample_once();
      if (metrics_snap_.active()) metrics_snap_.snapshot_once();
      // Final proof pass at the convergence instant, mirroring the
      // timeline's forced sample.
      if (monitor_.active()) monitor_.check_now();
      // Forced snapshot at the convergence instant: the final (hole-free)
      // field always lands on the recorder even between cadence ticks.
      if (field_) field_->snapshot(world_->sim().now(), *map_, true);
      if (cfg_.linger_after_coverage > 0.0) {
        // Fixed post-restoration horizon: keep the data plane flowing
        // so goodput is measured over a comparable window regardless of
        // when convergence happened (run_until still caps at run_time).
        world_->sim().schedule(cfg_.linger_after_coverage,
                               [this] { world_->sim().stop(); });
      } else {
        world_->sim().stop();
      }
      return;
    }
    if (auto self = weak_poll.lock()) world_->sim().schedule(0.5, *self);
  };
  world_->sim().schedule(0.5, *poll);
  // Periodic field snapshots ride their own weak self-scheduling chain
  // (same lifetime contract as the poll); the first fires immediately so
  // the pre-restoration deficit field is always recorded.
  auto field_tick = std::make_shared<std::function<void()>>();
  if (field_) {
    const double every =
        cfg_.field_interval > 0.0 ? cfg_.field_interval : 1.0;
    std::weak_ptr<std::function<void()>> weak_field = field_tick;
    *field_tick = [this, every, weak_field] {
      field_->snapshot(world_->sim().now(), *map_);
      if (auto self = weak_field.lock()) world_->sim().schedule(every, *self);
    };
    world_->sim().schedule(0.0, *field_tick);
  }
  try {
    world_->sim().run_until(cfg_.run_time);
  } catch (const std::exception& e) {
    // Best-effort post-mortem before the error propagates: the in-memory
    // trace/timeline/metrics are exactly what debugging needs.
    if (!cfg_.flight_dir.empty()) dump_flight_bundle("exception", e.what());
    throw;
  }

  result.reached_full_coverage =
      state->covered || map_->fully_covered(cfg_.params.k);
  if (!cfg_.flight_dir.empty() && !result.reached_full_coverage) {
    dump_flight_bundle(
        "non-convergence",
        std::to_string(map_->num_points() -
                       map_->num_covered(cfg_.params.k)) +
            " points below k-coverage at run_time");
  }
  result.finish_time = state->finish_time;
  result.end_time = world_->sim().now();
  result.placed_nodes = placements_.size();
  result.placements = placements_;
  result.radio_tx = world_->radio().total_tx();
  result.radio_rx = world_->radio().total_rx();
  result.arq = shared_->arq_stats;
  result.data = shared_->data_stats;
  if (injector_) result.faults_fired = injector_->faults_fired();
  result.radio_corrupted = world_->radio().total_corrupted();
  result.radio_partition_blocked = world_->radio().total_partition_blocked();
  result.invariant_checks = monitor_.checks_run();
  result.invariant_violations = monitor_.violations();
  result.metrics = coverage::compute_metrics(*map_, cfg_.params.k + 1);
  // One update per run (placements made during *this* call, so repeated
  // runs on one harness never double-count); the hot protocol path stays
  // free of instrumentation.
  if (common::metrics_enabled()) {
    auto& m = common::metrics();
    static common::Counter& runs = m.counter("protocol.grid.runs");
    static common::Counter& placed = m.counter("protocol.grid.placements");
    static common::Counter& covered =
        m.counter("protocol.grid.covered_runs");
    runs.inc();
    placed.inc(placements_.size() - placements_before);
    if (result.reached_full_coverage) covered.inc();
  }
  // End-of-run barrier for buffered sinks: the OTLP exporter writes its
  // document here, the live stream drains its pending frames.
  bus_.flush();
  // Whole frames the live stream shed (TCP backpressure drops entire
  // DTLM frames, never partial ones) — counted after the flush so the
  // final drain is included. Delta since the last run() on this harness.
  if (telemetry_sink_ != nullptr && common::metrics_enabled()) {
    const std::uint64_t dropped = telemetry_sink_->frames_dropped();
    common::metrics()
        .counter("telemetry.dropped_frames")
        .inc(dropped - telemetry_dropped_reported_);
    telemetry_dropped_reported_ = dropped;
  }
  return result;
}

SimRunResult run_grid_decor_sim(const SimRunConfig& cfg) {
  GridSimHarness harness(cfg);
  return harness.run();
}

}  // namespace decor::core
