// Umbrella header: the DECOR public API.
//
//   decor::core   — parameters, deployment engines, restoration pipelines
//   decor::coverage — coverage maps, metrics, redundancy analysis
//   decor::lds    — Halton / Hammersley / random point generators
//   decor::sim    — discrete-event WSN simulator
//   decor::net    — protocol components (discovery, heartbeat, election)
//   decor::geom   — plane geometry and spatial indexes
//
// Quickstart:
//
//   decor::common::Rng rng(42);
//   decor::core::DecorParams params;          // paper defaults: 100x100,
//   params.k = 3;                             // 2000 Halton points, rs=4
//   decor::core::Field field(params, rng);
//   field.deploy_random(200, rng);
//   auto result = decor::core::grid_decor(field, rng);
//   // result.total_nodes(), field.map.fraction_covered(3), ...
#pragma once

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "coverage/benefit_index.hpp"
#include "coverage/coverage_map.hpp"
#include "coverage/metrics.hpp"
#include "coverage/redundancy.hpp"
#include "coverage/sensor.hpp"
#include "decor/deployment.hpp"
#include "decor/engines.hpp"
#include "decor/params.hpp"
#include "decor/point_field.hpp"
#include "decor/restoration.hpp"
#include "decor/sim_runner.hpp"
#include "geometry/disc.hpp"
#include "geometry/grid_partition.hpp"
#include "geometry/point.hpp"
#include "geometry/rect.hpp"
#include "lds/discrepancy.hpp"
#include "lds/halton.hpp"
#include "lds/hammersley.hpp"
#include "lds/random_points.hpp"
#include "sim/failure.hpp"
#include "sim/world.hpp"
