// Causal critical-path analysis of a finished run ("why did convergence
// take this long, and who is to blame?").
//
// `decor explain <run-dir>` joins the four artifact families a run
// leaves behind — decor.timeline.v1 samples, decor.field.v1 deficit
// snapshots, decor.audit.v1 placement decisions and the trace dump's
// causality ids — and walks *backwards* from the convergence instant:
//
//   1. the last coverage hole to close (the hole in the final
//      uncovered>0 field snapshot nearest the closing placement),
//   2. the placement decision that closed it (the latest audit record
//      that newly satisfied points at or before convergence),
//   3. the full message exchange behind that placement (every trace
//      record sharing its causality id, classified into send /
//      retransmit / forward / rx / ack legs with per-leg offsets and
//      the retransmission-induced delay split out).
//
// On the same join it attributes the total restoration latency across
// three phases, following the detection / decision / propagation
// decomposition of the coverage-hole-healing literature:
//
//   detection   = time from t=0 to the first audited placement decision
//                 (nobody had decided anything yet: the fleet was
//                 discovering the failure);
//   propagation = the Lebesgue measure of the union of the in-flight
//                 intervals of all audited placement exchanges (first to
//                 last trace record per audit causality id), clipped to
//                 (detection, convergence] — wall-clock where at least
//                 one placement was on the air, which is what loss and
//                 RTO backoff stretch;
//   decision    = the remainder, so the three phases sum exactly to the
//                 convergence time by construction.
//
// Per-node and per-link health scores rank who made the run slow: nodes
// by retransmission ratio, drops at the node, exchange-latency inflation
// vs. the fleet median and dead-peer declarations; directed links
// (derived from rx records' `from=` detail — tx records carry no
// destination) by delivery latency inflation vs. the fleet median link
// latency and CRC-corrupt deliveries.
//
// Everything lands in one deterministic decor.explain.v1 JSON document:
// artifacts are loaded in sorted relative-path order, all numbers go
// through common::format_double, and no timestamps or absolute paths are
// embedded — identical artifacts produce identical bytes. Missing or
// clipped artifacts degrade to counted warnings, never hard failures
// (same convention as the HTML report): an explain document over a
// truncated trace ring still names the hole and the placement, with the
// exchange marked absent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "decor/artifacts.hpp"

namespace decor::core {

struct ExplainOptions {
  /// Worst offenders listed in the health rankings.
  std::size_t top_n = 5;
};

/// One leg of the critical-path exchange, in trace order. `dt` is the
/// offset from the exchange's first record.
struct ExplainLeg {
  double t = 0.0;
  double dt = 0.0;
  std::string leg;  ///< send|retransmit|forward|ack|rx|ack-rx|drop
  std::uint32_t node = 0;
  std::int64_t from = -1;  ///< rx legs: sender; -1 elsewhere
};

/// The message exchange behind the closing placement.
struct ExplainExchange {
  bool present = false;  ///< any trace record carried the causality id
  std::uint64_t trace_id = 0;
  std::uint32_t origin = 0;
  double first_t = 0.0;
  double last_t = 0.0;
  std::uint64_t retransmits = 0;
  /// Time from the originating send to the last retransmission leaving
  /// the origin: the delay the ARQ's retry/backoff machinery induced.
  double retx_delay = 0.0;
  bool completed = false;  ///< an ack leg closed the exchange
  std::vector<ExplainLeg> legs;
};

/// The hole whose closure produced convergence.
struct ExplainHole {
  bool present = false;
  double t = 0.0;  ///< snapshot time the hole was last seen open
  std::uint64_t points = 0;
  double area = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  std::uint32_t max_deficit = 0;
};

/// The audit record that closed it.
struct ExplainPlacement {
  bool present = false;
  double t = 0.0;
  std::uint32_t actor = 0;
  std::string reason;
  double x = 0.0;
  double y = 0.0;
  double benefit = 0.0;
  std::uint64_t newly_satisfied = 0;
  std::uint64_t trace_id = 0;
};

struct ExplainNodeHealth {
  std::uint32_t node = 0;
  std::uint64_t tx = 0;
  std::uint64_t retx = 0;
  std::uint64_t drops = 0;  ///< frames dropped inbound at this node
  std::uint64_t dead_peer_events = 0;
  double retx_ratio = 0.0;       ///< retransmits per originating send
  double latency_inflation = 0.0;  ///< median exchange latency / fleet median
  double score = 0.0;
};

struct ExplainLinkHealth {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t delivered = 0;
  std::uint64_t crc_drops = 0;
  double median_latency = 0.0;
  double latency_inflation = 0.0;  ///< vs. fleet median link latency
  double score = 0.0;
};

/// The full analysis result (the in-memory form of decor.explain.v1).
struct ExplainDoc {
  bool converged = false;
  double convergence_time = -1.0;  ///< first uncovered==0 evidence; -1 never
  double sample_cadence = 0.0;     ///< timeline sampling interval (tolerance)
  double detection = 0.0;
  double decision = 0.0;
  double propagation = 0.0;
  ExplainHole last_hole;
  ExplainPlacement closing_placement;
  ExplainExchange exchange;
  std::vector<ExplainNodeHealth> nodes;  ///< worst first, top_n entries
  std::vector<ExplainLinkHealth> links;  ///< worst first, top_n entries
  /// Fleet-wide context for the health scores.
  double fleet_median_exchange_latency = 0.0;
  double fleet_median_link_latency = 0.0;
  std::uint64_t audit_records = 0;
  std::uint64_t audited_exchanges = 0;  ///< audit rows whose trace ids joined
  std::uint64_t trace_records = 0;
  std::uint64_t timeline_samples = 0;
  std::vector<std::string> warnings;
};

/// Runs the analysis over an already-loaded artifact set (the HTML
/// report reuses its own load). Never throws: every degraded input
/// becomes a counted warning in the document.
ExplainDoc analyze_run(const std::vector<Artifact>& artifacts,
                       const ExplainOptions& opts = {});

/// Convenience: load_run_artifacts + analyze_run. Throws
/// common::RequireError only when `dir` is not a readable directory.
ExplainDoc explain_run_dir(const std::string& dir,
                           const ExplainOptions& opts = {});

/// Serializes the document as deterministic decor.explain.v1 JSON
/// (newline-terminated).
std::string explain_to_json(const ExplainDoc& doc);

/// Parses a decor.explain.v1 document back (for `explain diff` against
/// a saved file). Returns false when `v` is not such a document.
bool explain_from_json(const common::JsonValue& v, ExplainDoc& out);

/// Root-cause comparison of two explain documents (A = baseline,
/// B = candidate).
struct ExplainDiff {
  double convergence_delta = 0.0;  ///< B - A; computed when both converged
  bool comparable = false;
  double detection_delta = 0.0;
  double decision_delta = 0.0;
  double propagation_delta = 0.0;
  /// Phase with the largest absolute delta ("detection", "decision",
  /// "propagation"), or "none" when nothing moved.
  std::string dominant_phase = "none";
  /// Links/nodes whose health worsened most from A to B (by score
  /// delta, worst first; entries present only in B count in full).
  std::vector<ExplainLinkHealth> suspect_links;
  std::vector<ExplainNodeHealth> suspect_nodes;
};

ExplainDiff explain_diff(const ExplainDoc& a, const ExplainDoc& b,
                         std::size_t top_n = 3);

}  // namespace decor::core
