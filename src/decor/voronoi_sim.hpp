// Protocol-driven Voronoi DECOR on the discrete-event simulator.
//
// The Voronoi scheme needs no leaders: every node owns its local Voronoi
// cell (the approximation points within rc that lie closer to it than to
// any neighbor it can hear) and independently places replacements for its
// own uncovered points. This runner executes that per-node loop over the
// real radio: neighbor knowledge comes from HELLO/heartbeats, placements
// are announced with kPlacement messages, and newly spawned nodes claim
// territory simply by being heard. A harness-level watchdog models the
// paper's deployment assumption (a human/robot carries starter nodes)
// when only unowned points — beyond rc of the whole network — remain
// uncovered.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.hpp"
#include "coverage/coverage_map.hpp"
#include "coverage/field_recorder.hpp"
#include "coverage/metrics.hpp"
#include "decor/params.hpp"
#include "net/sensor_node.hpp"
#include "sim/audit_log.hpp"
#include "sim/fault.hpp"
#include "sim/invariant_monitor.hpp"
#include "sim/metrics_snapshot.hpp"
#include "sim/timeline.hpp"
#include "sim/world.hpp"

namespace decor::core {

struct VoronoiSimConfig {
  DecorParams params;
  std::vector<geom::Point2> initial_positions;
  std::uint64_t seed = 1;

  /// Wall limit in simulated seconds.
  double run_time = 300.0;

  /// When > 0, full k-coverage no longer stops the run immediately: the
  /// simulation lingers this many extra seconds (capped by run_time) so
  /// the data plane gets a fixed-length goodput window. finish_time
  /// still records the convergence instant (see SimRunConfig).
  double linger_after_coverage = 0.0;

  /// Pacing of each node's coverage-check loop.
  double check_interval = 0.5;

  /// Simulated seconds without ground-truth progress before the watchdog
  /// seeds the frontier (unowned uncovered points).
  double stall_timeout = 10.0;

  net::HeartbeatParams heartbeat{1.0, 3.5};
  sim::RadioParams radio{};

  /// ARQ (net::ReliableLink) under kPlacement announcements;
  /// kHello/kHeartbeat stay best-effort.
  bool enable_arq = true;
  net::ReliableLinkParams arq{};

  /// Data-plane workload toward the base station (node 0); off by
  /// default so control-plane-only trajectories stay byte-identical.
  net::DataPlaneParams data_plane{};

  /// Tracing (applied to the world's Trace at construction): record
  /// protocol events, optionally bounded to the `trace_capacity` most
  /// recent records (0 = unbounded) and/or streamed to `trace_jsonl` as
  /// one JSON object per line.
  bool trace = false;
  std::size_t trace_capacity = 0;
  std::string trace_jsonl;

  /// Convergence timeline: sample coverage/liveness/ARQ state every
  /// `timeline_interval` sim-seconds (0 = no timeline), optionally
  /// streaming decor.timeline.v1 lines to `timeline_jsonl`.
  double timeline_interval = 0.0;
  std::string timeline_jsonl;

  /// Spatial field recorder: rasterized k-deficit snapshots every
  /// `field_interval` sim-seconds (decor.field.v1), with a forced
  /// snapshot at the convergence instant. Recording is on when either
  /// field_interval > 0 or `field_jsonl` is set (the interval then
  /// defaults to 1s); `field_raster` overrides the rs-derived raster
  /// side (0 = FieldRecorder::default_raster).
  double field_interval = 0.0;
  std::string field_jsonl;
  std::size_t field_raster = 0;

  /// Placement audit log: record every placement decision (in memory;
  /// tests and reports). `audit_jsonl` additionally streams each record
  /// as a decor.audit.v1 line and implies `audit`.
  bool audit = false;
  std::string audit_jsonl;

  /// Flight recorder: when set, a run that ends without full coverage,
  /// needs the watchdog, or aborts on an exception dumps trace/timeline/
  /// metrics into this directory (see sim/flight_recorder.hpp).
  std::string flight_dir;

  /// Fault campaign (decor.faults.v1); see SimRunConfig::fault_plan. A
  /// non-empty plan switches the ARQ to purge_on_give_up.
  sim::FaultPlan fault_plan;

  /// Invariant monitor cadence in sim-seconds (0 = monitor off); see
  /// SimRunConfig::invariant_interval. The leaderless scheme checks
  /// coverage consistency, ArqStats conservation and the goodput bound.
  double invariant_interval = 0.0;

  /// Periodic metrics-registry snapshots (decor.metrics.v1); see
  /// SimRunConfig::metrics_interval.
  double metrics_interval = 0.0;
  std::string metrics_jsonl;

  /// Live telemetry stream target; see SimRunConfig::telemetry_stream.
  std::string telemetry_stream;

  /// OTLP/JSON export endpoint; see SimRunConfig::otlp.
  std::string otlp;

  /// Serialize cumulative ARQ sent/retx per timeline sample; see
  /// SimRunConfig::timeline_arq.
  bool timeline_arq = false;
};

struct VoronoiSimResult {
  std::size_t initial_nodes = 0;
  std::size_t placed_nodes = 0;
  /// Nodes the watchdog (robot) had to seed, out of placed_nodes.
  std::size_t seeded_nodes = 0;
  bool reached_full_coverage = false;
  double finish_time = 0.0;
  /// Sim clock when the run actually stopped (== finish_time unless
  /// linger_after_coverage extended it); goodput denominators use this.
  double end_time = 0.0;
  std::uint64_t radio_tx = 0;
  std::uint64_t radio_rx = 0;
  /// ARQ accounting, cumulative over the harness lifetime.
  net::ArqStats arq;
  /// Data-plane accounting (all zeros unless cfg.data_plane.enabled).
  net::DataPlaneStats data;
  coverage::CoverageMetrics metrics;
  std::vector<geom::Point2> placements;
  /// Fault-campaign accounting (zeros unless cfg.fault_plan non-empty).
  std::uint64_t faults_fired = 0;
  std::uint64_t radio_corrupted = 0;
  std::uint64_t radio_partition_blocked = 0;
  /// Invariant-monitor accounting (zeros unless invariant_interval > 0).
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
};

class VoronoiSimHarness {
 public:
  struct Shared;

  explicit VoronoiSimHarness(VoronoiSimConfig cfg);
  ~VoronoiSimHarness();

  VoronoiSimHarness(const VoronoiSimHarness&) = delete;
  VoronoiSimHarness& operator=(const VoronoiSimHarness&) = delete;

  sim::World& world() noexcept { return *world_; }
  coverage::CoverageMap& map() noexcept { return *map_; }
  /// The convergence timeline (empty unless cfg.timeline_interval > 0).
  sim::Timeline& timeline() noexcept { return timeline_; }
  /// The field recorder, or nullptr when field recording is off.
  coverage::FieldRecorder* field() noexcept { return field_.get(); }
  /// The placement audit log (empty unless cfg.audit / cfg.audit_jsonl).
  sim::AuditLog& audit() noexcept { return audit_; }
  /// The telemetry bus every producer of this harness publishes on.
  common::TelemetryBus& telemetry() noexcept { return bus_; }
  /// The periodic metrics snapshotter (inactive unless configured).
  sim::MetricsSnapshotter& metrics_snapshotter() noexcept {
    return metrics_snap_;
  }

  std::uint32_t spawn_node(geom::Point2 pos);
  void kill_node(std::uint32_t id);

  /// Reboots a dead node in place with a fresh protocol process
  /// (amnesia); restores its coverage disc. No-op on an alive node.
  void reboot_node(std::uint32_t id);

  /// The fault injector, or nullptr when cfg.fault_plan is empty.
  sim::FaultInjector* injector() noexcept { return injector_.get(); }
  /// The invariant monitor (inactive unless cfg.invariant_interval > 0).
  sim::InvariantMonitor& monitor() noexcept { return monitor_; }

  /// Chaos: at simulated time `at`, kills `count` uniformly random alive
  /// nodes (ground-truth map kept in sync, unlike raw World::kill).
  void schedule_random_kills(double at, std::size_t count);

  /// Runs until full k-coverage or cfg.run_time; callable repeatedly
  /// (failure injection between calls resumes the protocol).
  VoronoiSimResult run();

 private:
  void watchdog_seed();
  sim::TimelineSample sample_timeline();
  void dump_flight_bundle(const std::string& reason,
                          const std::string& detail);
  void register_invariants();

  VoronoiSimConfig cfg_;
  /// Declared before the producers; see GridSimHarness::bus_.
  common::TelemetryBus bus_;
  /// See GridSimHarness::telemetry_sink_.
  common::FrameStreamSink* telemetry_sink_ = nullptr;
  std::uint64_t telemetry_dropped_reported_ = 0;
  std::unique_ptr<sim::World> world_;
  std::unique_ptr<coverage::CoverageMap> map_;
  std::shared_ptr<Shared> shared_;
  sim::Timeline timeline_;
  sim::MetricsSnapshotter metrics_snap_;
  std::unique_ptr<coverage::FieldRecorder> field_;
  sim::AuditLog audit_;
  std::unique_ptr<sim::FaultInjector> injector_;
  sim::InvariantMonitor monitor_;
  std::vector<geom::Point2> placements_;
  std::size_t seeded_ = 0;
  std::size_t initial_nodes_ = 0;
  bool initial_deployed_ = false;
};

VoronoiSimResult run_voronoi_decor_sim(const VoronoiSimConfig& cfg);

}  // namespace decor::core
