#include "decor/watch.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <tuple>
#include <utility>

#include "common/json.hpp"
#include "common/require.hpp"
#include "decor/artifacts.hpp"

namespace decor::core {

namespace {

/// One decimal place, C locale (the CLI never calls setlocale).
std::string fmt1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

/// Display columns of a UTF-8 string: every non-continuation byte is one
/// column (all glyphs the renderer emits are single-width).
std::size_t display_width(std::string_view s) {
  std::size_t w = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++w;
  }
  return w;
}

/// Appends `s` truncated/padded to exactly `cols` display columns plus a
/// newline — the invariant every dashboard line keeps.
void append_padded(std::string& out, std::string_view s, std::size_t cols) {
  std::size_t w = 0;
  std::size_t i = 0;
  while (i < s.size() && w < cols) {
    std::size_t j = i + 1;
    while (j < s.size() &&
           (static_cast<unsigned char>(s[j]) & 0xC0) == 0x80) {
      ++j;
    }
    out.append(s, i, j - i);
    ++w;
    i = j;
  }
  out.append(cols - w, ' ');
  out.push_back('\n');
}

constexpr const char* kSparkGlyphs[8] = {"▁", "▂", "▃",
                                         "▄", "▅", "▆",
                                         "▇", "█"};
constexpr const char* kHeatGlyphs[4] = {"░", "▒", "▓",
                                        "█"};

/// One sparkline row: fixed-width label, latest value, then the series
/// min/max-normalized onto the eighth-block glyphs (evenly subsampled to
/// the remaining width; a constant series renders as the lowest block).
void append_spark_row(std::string& out, std::size_t cols,
                      std::string_view label,
                      const std::vector<double>& series) {
  std::string line(label);
  if (line.size() < 10) line.append(10 - line.size(), ' ');
  const std::string val = series.empty() ? std::string("-")
                                         : fmt1(series.back());
  if (val.size() < 9) line.append(9 - val.size(), ' ');
  line += val;
  line += ' ';
  if (!series.empty() && cols > display_width(line)) {
    const std::size_t w = cols - display_width(line);
    double lo = series[0];
    double hi = series[0];
    for (const double v : series) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    const std::size_t n = series.size();
    const std::size_t points = std::min(w, n);
    for (std::size_t x = 0; x < points; ++x) {
      const std::size_t idx =
          points > 1 ? x * (n - 1) / (points - 1) : n - 1;
      std::size_t g = 0;
      if (hi > lo) {
        g = static_cast<std::size_t>((series[idx] - lo) / (hi - lo) * 7.0 +
                                     0.5);
        g = std::min<std::size_t>(g, 7);
      }
      line += kSparkGlyphs[g];
    }
  }
  append_padded(out, line, cols);
}

std::uint64_t u64_of(const common::JsonValue& obj, std::string_view key) {
  const auto* v = obj.find(key);
  return v != nullptr ? static_cast<std::uint64_t>(v->as_number()) : 0;
}

}  // namespace

bool DashboardState::ingest(std::string_view stream, std::string_view line) {
  const auto doc = common::parse_json(line);
  if (!doc || !doc->is_object()) {
    ++malformed_;
    return false;
  }
  if (doc->find("schema") != nullptr) {
    // Header line: the field header carries the raster geometry; the
    // timeline/metrics/audit headers carry nothing the dashboard needs.
    if (stream == "field") {
      k_ = static_cast<std::uint32_t>(u64_of(*doc, "k"));
      field_cols_ = static_cast<std::size_t>(u64_of(*doc, "cols"));
      field_rows_ = static_cast<std::size_t>(u64_of(*doc, "rows"));
    }
    return true;
  }
  const auto* tv = doc->find("t");
  const double t = tv != nullptr ? tv->as_number() : last_t_;
  last_t_ = std::max(last_t_, t);
  if (stream == "timeline") {
    WatchTimelinePoint p;
    p.t = t;
    if (const auto* v = doc->find("covered")) p.covered = v->as_number();
    p.uncovered = u64_of(*doc, "uncovered");
    p.alive = u64_of(*doc, "alive");
    p.arq_in_flight = u64_of(*doc, "arq_in_flight");
    if (const auto* v = doc->find("arq_sent")) {
      p.has_arq = true;
      p.arq_sent = static_cast<std::uint64_t>(v->as_number());
      p.arq_retx = u64_of(*doc, "arq_retx");
    }
    if (const auto* v = doc->find("reading_bytes")) {
      p.has_readings = true;
      p.reading_bytes = static_cast<std::uint64_t>(v->as_number());
    }
    timeline_.push_back(p);
  } else if (stream == "field") {
    ++field_count_;
    field_t_ = t;
    if (const auto* v = doc->find("total_deficit")) {
      field_deficit_ = v->as_number();
    }
    field_uncovered_ = u64_of(*doc, "uncovered");
    if (const auto* v = doc->find("raster"); v != nullptr && v->is_array()) {
      raster_.clear();
      raster_.reserve(v->items().size());
      for (const auto& cell : v->items()) {
        raster_.push_back(static_cast<std::uint32_t>(cell.as_number()));
      }
    }
  } else if (stream == "metrics") {
    ++metrics_count_;
  } else if (stream == "audit") {
    ++audit_count_;
  }
  return true;
}

std::string render_dashboard_frame(const DashboardState& state,
                                   std::size_t cols, std::size_t rows) {
  cols = std::max<std::size_t>(cols, 32);
  rows = std::max<std::size_t>(rows, 10);
  std::string out;
  out.reserve(rows * (cols + 1) * 3);

  const auto& tl = state.timeline();
  std::string status = "decor watch  t=" + fmt1(state.last_t()) + "s";
  if (!tl.empty()) {
    status += "  covered=" + fmt1(tl.back().covered * 100.0) + "%";
    status += "  alive=" + std::to_string(tl.back().alive);
    status += "  uncovered=" + std::to_string(tl.back().uncovered);
  }
  status += "  [tl " + std::to_string(tl.size()) + " | field " +
            std::to_string(state.field_snapshots()) + " | metrics " +
            std::to_string(state.metrics_snapshots()) + "]";
  if (state.dropped_frames() > 0) {
    status += "  dropped=" + std::to_string(state.dropped_frames());
  }
  if (state.malformed() > 0) {
    status += "  !" + std::to_string(state.malformed()) + " bad";
  }
  append_padded(out, status, cols);
  append_padded(out, std::string(cols, '-'), cols);

  // Heatmap: max-pool the k-deficit raster onto heat_rows x cols display
  // cells (max keeps pinhole coverage holes visible after downscaling);
  // raster row 0 is the field's south edge, so display flips vertically.
  const std::size_t heat_rows = rows - 7;
  if (state.has_field() &&
      state.raster().size() >= state.field_cols() * state.field_rows()) {
    const std::size_t fc = state.field_cols();
    const std::size_t fr = state.field_rows();
    const std::uint32_t k = std::max<std::uint32_t>(state.k(), 1);
    for (std::size_t r = 0; r < heat_rows; ++r) {
      std::string line;
      const std::size_t rlo = r * fr / heat_rows;
      const std::size_t rhi = std::max(rlo + 1, (r + 1) * fr / heat_rows);
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t clo = c * fc / cols;
        const std::size_t chi = std::max(clo + 1, (c + 1) * fc / cols);
        std::uint32_t d = 0;
        for (std::size_t rr = rlo; rr < rhi && rr < fr; ++rr) {
          for (std::size_t cc = clo; cc < chi && cc < fc; ++cc) {
            d = std::max(d, state.raster()[(fr - 1 - rr) * fc + cc]);
          }
        }
        if (d == 0) {
          line += ' ';
        } else {
          const double ratio = static_cast<double>(d) / k;
          line += ratio >= 1.0
                      ? kHeatGlyphs[3]
                      : (ratio > 2.0 / 3.0
                             ? kHeatGlyphs[2]
                             : (ratio > 1.0 / 3.0 ? kHeatGlyphs[1]
                                                  : kHeatGlyphs[0]));
        }
      }
      append_padded(out, line, cols);
    }
    append_padded(out,
                  "field t=" + fmt1(state.field_t()) +
                      "  deficit=" + fmt1(state.field_deficit()) +
                      "  uncovered=" +
                      std::to_string(state.field_uncovered()) + "  k=" +
                      std::to_string(state.k()) + " raster=" +
                      std::to_string(fc) + "x" + std::to_string(fr),
                  cols);
  } else {
    for (std::size_t r = 0; r < heat_rows; ++r) {
      append_padded(out,
                    r == heat_rows / 2 ? "  (no decor.field.v1 snapshots)"
                                       : "",
                    cols);
    }
    append_padded(out, "field -", cols);
  }

  std::vector<double> covered;
  std::vector<double> alive;
  std::vector<double> retx;
  std::vector<double> goodput;
  bool any_arq = false;
  bool any_readings = false;
  for (const auto& p : tl) {
    any_arq = any_arq || p.has_arq;
    any_readings = any_readings || p.has_readings;
  }
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const auto& p = tl[i];
    covered.push_back(p.covered * 100.0);
    alive.push_back(static_cast<double>(p.alive));
    if (any_arq) {
      retx.push_back(p.arq_sent > 0 ? 100.0 *
                                          static_cast<double>(p.arq_retx) /
                                          static_cast<double>(p.arq_sent)
                                    : 0.0);
    } else {
      retx.push_back(static_cast<double>(p.arq_in_flight));
    }
    if (any_readings) {
      const double dt = i > 0 ? p.t - tl[i - 1].t : p.t;
      const double db =
          i > 0 ? static_cast<double>(p.reading_bytes) -
                      static_cast<double>(tl[i - 1].reading_bytes)
                : static_cast<double>(p.reading_bytes);
      goodput.push_back(dt > 0.0 ? db / dt : 0.0);
    } else {
      goodput.push_back(static_cast<double>(p.uncovered));
    }
  }
  append_spark_row(out, cols, "covered %", covered);
  append_spark_row(out, cols, "alive", alive);
  append_spark_row(out, cols, any_arq ? "retx %" : "inflight", retx);
  append_spark_row(out, cols, any_readings ? "goodput" : "uncovered",
                   goodput);
  return out;
}

namespace {

void emit_frame(const DashboardState& state, const WatchOptions& opts,
                std::ostream& out) {
  if (opts.ansi) out << "\x1b[H\x1b[2J";
  out << render_dashboard_frame(state, opts.cols, opts.rows);
  if (!opts.ansi) out << "\f\n";
}

/// Dashboard stream name for a classified artifact kind, or "" to skip
/// the file (trace dumps and whole-file documents are irrelevant here).
std::string stream_for_kind(const std::string& kind) {
  if (kind == "timeline") return "timeline";
  if (kind == "field") return "field";
  if (kind == "metrics-stream") return "metrics";
  if (kind == "audit") return "audit";
  return "";
}

struct ReplayEvent {
  double t;
  int rank;  ///< timeline < field < metrics/audit at equal t
  std::size_t file;
  std::size_t line;
  std::string stream;
  std::string text;
};

}  // namespace

std::size_t watch_replay_dir(const std::string& dir,
                             const WatchOptions& opts, std::ostream& out) {
  const auto artifacts = load_run_artifacts(dir, "watch");

  DashboardState state;
  std::vector<ReplayEvent> events;
  for (std::size_t fi = 0; fi < artifacts.size(); ++fi) {
    const auto& a = artifacts[fi];
    const std::string stream = stream_for_kind(a.kind);
    if (stream.empty() || a.header_line.empty()) continue;
    // Headers configure the state up front (the bus replays them the
    // same way to late-attached sinks), data lines are merged by time.
    state.ingest(stream, a.header_line);
    const int rank = stream == "timeline" ? 0 : stream == "field" ? 1 : 2;
    double prev_t = 0.0;
    for (std::size_t li = 0; li < a.records.size(); ++li) {
      double t = prev_t;
      if (const auto* tv = a.records[li].find("t")) t = tv->as_number();
      prev_t = t;
      events.push_back({t, rank, fi, li, stream, a.lines[li]});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const ReplayEvent& a, const ReplayEvent& b) {
              return std::tie(a.t, a.rank, a.file, a.line) <
                     std::tie(b.t, b.rank, b.file, b.line);
            });

  std::size_t total_frames = 0;
  for (const auto& e : events) {
    if (e.stream == "timeline" || e.stream == "field") ++total_frames;
  }
  // Even subsampling with first and last kept, mirroring how the HTML
  // report picks heatmaps.
  std::set<std::size_t> chosen;
  if (opts.max_frames > 0 && total_frames > opts.max_frames) {
    const std::size_t n = opts.max_frames;
    for (std::size_t j = 0; j < n; ++j) {
      chosen.insert(n > 1 ? j * (total_frames - 1) / (n - 1)
                          : total_frames - 1);
    }
  }

  std::size_t frame_idx = 0;
  std::size_t written = 0;
  for (const auto& e : events) {
    state.ingest(e.stream, e.text);
    if (e.stream != "timeline" && e.stream != "field") continue;
    if (chosen.empty() || chosen.count(frame_idx) > 0) {
      emit_frame(state, opts, out);
      ++written;
    }
    ++frame_idx;
  }
  if (written == 0) {
    // Nothing frame-worthy (e.g. metrics-only directory): still show
    // the final state once so `decor watch` never outputs nothing.
    emit_frame(state, opts, out);
    ++written;
  }
  return written;
}

namespace {

bool read_stream_line(std::FILE* in, std::string& line) {
  line.clear();
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') return true;
    line.push_back(static_cast<char>(c));
  }
  return !line.empty();
}

}  // namespace

std::size_t watch_follow(std::FILE* in, const WatchOptions& opts,
                         std::ostream& out) {
  DashboardState state;
  std::string line;
  std::size_t written = 0;
  // Per-stream DTLM sequence tracking: data frames carry a 1-based
  // per-stream seq (headers ride seq 0), so a gap is exactly the number
  // of whole frames a lossy transport (FrameStreamSink over TCP) shed.
  std::map<std::string, unsigned long long> last_seq;
  while (read_stream_line(in, line)) {
    char stream_buf[32];
    unsigned long long seq = 0;
    std::size_t len = 0;
    if (std::sscanf(line.c_str(), "DTLM %31s %llu %zu", stream_buf, &seq,
                    &len) != 3) {
      continue;  // interleaved program output; resync on the next frame
    }
    if (len > (64u << 20)) continue;  // corrupt length; resync
    std::string payload(len, '\0');
    if (std::fread(payload.data(), 1, len, in) != len) break;
    const int nl = std::fgetc(in);
    if (nl != '\n' && nl != EOF) std::ungetc(nl, in);
    const std::string stream(stream_buf);
    if (seq > 0) {
      const auto it = last_seq.find(stream);
      if (it != last_seq.end() && seq > it->second + 1) {
        state.note_dropped(seq - it->second - 1);
      }
      last_seq[stream] = std::max(seq, it != last_seq.end() ? it->second
                                                            : 0ULL);
    }
    state.ingest(stream, payload);
    // Schema headers configure the state but carry no sample — wait for
    // the first data line before painting.
    if (payload.rfind("{\"schema\"", 0) == 0) continue;
    if (stream == "timeline" || stream == "field") {
      emit_frame(state, opts, out);
      out.flush();
      ++written;
      if (opts.max_frames > 0 && written >= opts.max_frames) break;
    }
  }
  if (written == 0) {
    emit_frame(state, opts, out);
    ++written;
  }
  return written;
}

}  // namespace decor::core
