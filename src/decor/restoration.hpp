// Restoration pipelines: deploy -> fail -> measure -> restore.
//
// These helpers implement the experiment skeletons of Section 4.2: random
// node failures after full deployment (Figures 11, 12) and disc-shaped
// area failures (Figures 6, 13, 14), where the same engine that deployed
// the network is re-run on the damaged state to restore k-coverage.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "coverage/metrics.hpp"
#include "decor/deployment.hpp"
#include "decor/engines.hpp"
#include "decor/point_field.hpp"
#include "geometry/disc.hpp"

namespace decor::core {

/// Deploys `field` to full k-coverage with `scheme` (initial random nodes
/// should already be on the field). Returns the engine result.
DeploymentResult deploy_full(Scheme scheme, Field& field, common::Rng& rng,
                             EngineLimits limits = {});

/// Kills a uniformly random `fraction` of the alive sensors; returns the
/// killed ids.
std::vector<std::uint32_t> fail_random_fraction(Field& field, double fraction,
                                                common::Rng& rng);

/// Kills every alive sensor inside `area`; returns the killed ids.
std::vector<std::uint32_t> fail_area(Field& field, const geom::Disc& area);

/// Kills random sensors one at a time until the 1-coverage fraction drops
/// below `min_coverage`; returns the largest tolerated failure fraction.
/// The what-if runs on `field` itself and is undone before returning (the
/// killed sensors are revived and their discs re-added), so the field is
/// observably unmodified — without the per-call deep copy the old
/// implementation paid.
double max_tolerable_failure_fraction(Field& field, double min_coverage,
                                      common::Rng& rng);

/// End-to-end outcome of a failure + restoration experiment.
struct RestorationOutcome {
  std::vector<std::uint32_t> failed;
  coverage::CoverageMetrics post_failure;
  DeploymentResult restoration;
};

/// Applies an area failure then restores k-coverage with `scheme`.
RestorationOutcome restore_after_area_failure(Scheme scheme, Field& field,
                                              const geom::Disc& area,
                                              common::Rng& rng,
                                              EngineLimits limits = {});

}  // namespace decor::core
