#include "decor/voronoi_sim.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/metrics.hpp"
#include "common/otlp.hpp"
#include "common/require.hpp"
#include "coverage/benefit_index.hpp"
#include "decor/point_field.hpp"
#include "decor/sim_runner.hpp"
#include "net/messages.hpp"
#include "sim/flight_recorder.hpp"

namespace decor::core {

namespace {
struct PosKey {
  double x, y;
  bool operator==(const PosKey&) const = default;
};
struct PosKeyHash {
  std::size_t operator()(const PosKey& k) const noexcept {
    std::hash<double> h;
    return h(k.x) * 1000003u ^ h(k.y);
  }
};
}  // namespace

struct VoronoiSimHarness::Shared {
  DecorParams params;
  double check_interval = 0.5;
  VoronoiSimHarness* harness = nullptr;
  const geom::PointGridIndex* points = nullptr;
  net::HeartbeatParams heartbeat;
  bool enable_arq = true;
  net::ReliableLinkParams arq;
  net::DataPlaneParams data_plane;
  /// Per-world ARQ accounting (single-threaded simulation).
  net::ArqStats arq_stats;
  /// Per-world data-plane accounting (zeros unless the data plane runs).
  net::DataPlaneStats data_stats;
  /// Placement audit sink, or nullptr when auditing is off. Nodes only
  /// pre-mint kPlacement trace ids when auditing, so non-audited runs
  /// keep their exact pre-audit trace-id sequences.
  sim::AuditLog* audit = nullptr;
};

namespace {

class DecorVoronoiSimNode final : public net::SensorNode {
 public:
  using Shared = VoronoiSimHarness::Shared;

  explicit DecorVoronoiSimNode(std::shared_ptr<Shared> shared)
      : net::SensorNode(make_node_params(*shared)),
        shared_(std::move(shared)) {
    set_arq_stats(&shared_->arq_stats);
    set_data_stats(&shared_->data_stats);
  }

  void on_start() override {
    net::SensorNode::on_start();
    // Phase jitter de-synchronizes the per-node check loops.
    const double phase =
        world().rng().uniform(0.0, shared_->check_interval);
    set_timer(shared_->check_interval + phase, [this] { tick(); });
  }

 protected:
  void handle_message(const sim::Message& msg) override {
    if (msg.kind == net::kPlacement) {
      const auto& p = msg.as<net::PlacementPayload>();
      // The announcement that deployed *this very node* is not an extra
      // device — we already count ourselves, and crediting it deadlocks
      // a k>1 point with a permanent phantom. A later co-located sibling
      // is heard through its own HELLO/heartbeats instead.
      if (p.pos == pos()) return;
      // Remember out-of-range-for-HELLO deployments whose discs can
      // still cover our points; in-range nodes arrive via HELLO.
      if (geom::distance(p.pos, pos()) <= params_.rc + shared_->params.rs) {
        ++notices_[PosKey{p.pos.x, p.pos.y}];
      }
    }
  }

  void on_neighbor_failed(std::uint32_t, geom::Point2 last_pos) override {
    // The device at last_pos is gone: retire one per-device claim there
    // (a deployment of ours, else a placement notice). Claims outlive
    // the neighbor table, so without this the dead node's coverage
    // lives on as a phantom and the hole never heals.
    const PosKey key{last_pos.x, last_pos.y};
    if (auto it = my_placements_.find(key); it != my_placements_.end()) {
      if (--it->second == 0) my_placements_.erase(it);
    } else if (auto it2 = notices_.find(key); it2 != notices_.end()) {
      if (--it2->second == 0) notices_.erase(it2);
    }
    // Ownership and coverage both changed; the next tick recomputes.
    idle_streak_ = 0;
  }

 private:
  static net::SensorNodeParams make_node_params(const Shared& shared) {
    net::SensorNodeParams p;
    p.rc = shared.params.rc;
    p.heartbeat = shared.heartbeat;
    p.enable_arq = shared.enable_arq;
    p.arq = shared.arq;
    p.data_plane = shared.data_plane;
    return p;
  }

  /// Points of my local Voronoi cell: within rc, closer to me than to
  /// any neighbor I can hear (ties break to the lower node id).
  std::vector<std::uint32_t> owned_points() const {
    std::vector<std::uint32_t> out;
    const auto neighbors = table_.snapshot();
    shared_->points->for_each_in_disc(
        pos(), params_.rc, [&](std::size_t pid) {
          const geom::Point2 p = shared_->points->point(pid);
          const double d_self = geom::distance_sq(p, pos());
          for (const auto& [nid, entry] : neighbors) {
            const double d_nb = geom::distance_sq(p, entry.pos);
            if (d_nb < d_self || (d_nb == d_self && nid < id())) return;
          }
          out.push_back(static_cast<std::uint32_t>(pid));
        });
    return out;
  }

  /// Believed coverage of the given points from everything this node can
  /// hear (multiplicity preserved; see sim_runner.cpp for why).
  std::unordered_map<std::size_t, std::uint32_t> believed_coverage(
      const std::vector<std::uint32_t>& pids) const {
    std::unordered_map<std::size_t, std::uint32_t> counts;
    counts.reserve(pids.size());
    for (auto pid : pids) counts.emplace(pid, 0);

    std::vector<std::pair<geom::Point2, std::uint32_t>> contributors;
    contributors.emplace_back(pos(), 1);
    std::unordered_map<PosKey, std::uint32_t, PosKeyHash> heard_at;
    for (const auto& [nid, entry] : table_.snapshot()) {
      (void)nid;
      contributors.emplace_back(entry.pos, 1);
      ++heard_at[PosKey{entry.pos.x, entry.pos.y}];
    }
    for (const auto& [key, placed] : my_placements_) {
      const auto it = heard_at.find(key);
      const std::uint32_t heard = it == heard_at.end() ? 0 : it->second;
      if (placed > heard) {
        contributors.emplace_back(geom::Point2{key.x, key.y},
                                  placed - heard);
      }
    }
    for (const auto& [key, n] : notices_) {
      // Skip notices already represented by a heard neighbor there.
      const auto it = heard_at.find(key);
      const std::uint32_t heard = it == heard_at.end() ? 0 : it->second;
      if (n > heard) {
        contributors.emplace_back(geom::Point2{key.x, key.y}, n - heard);
      }
    }

    for (const auto& [c, mult] : contributors) {
      shared_->points->for_each_in_disc(
          c, shared_->params.rs, [&](std::size_t pid) {
            auto it = counts.find(pid);
            if (it != counts.end()) it->second += mult;
          });
    }
    return counts;
  }

  void tick() {
    const auto mine = owned_points();
    const auto counts = believed_coverage(mine);

    // Max-benefit uncovered owned point (Equation 1 over my cell; points
    // outside the cell neither contribute nor qualify).
    const auto choice = coverage::BenefitIndex::choose_believed(
        *shared_->points, shared_->params.rs, shared_->params.k, mine,
        [&](std::size_t pid) -> std::optional<std::uint32_t> {
          const auto it = counts.find(pid);
          if (it == counts.end()) return std::nullopt;
          return it->second;
        });

    if (choice) {
      const auto& best = choice->best;
      const geom::Point2 best_pos = shared_->points->point(best.point);
      idle_streak_ = 0;
      ++my_placements_[PosKey{best_pos.x, best_pos.y}];
      shared_->harness->spawn_node(best_pos);
      // A neighbor that misses this places on top of the new node, so
      // the announcement is ARQed; dedup keeps retransmissions from
      // inflating notice multiplicity.
      auto msg = sim::Message::make(id(), net::kPlacement,
                                    net::PlacementPayload{best_pos, 0},
                                    net::wire_size(net::kPlacement));
      if (shared_->audit != nullptr) {
        // Pre-mint the exchange's trace id so the audit row joins onto
        // the causal trace of its own announcement.
        msg.trace_id = world().mint_trace_id();
        std::uint64_t newly = 0;
        for (const auto& [pid, c] : counts) {
          if (c + 1 != shared_->params.k) continue;
          if (geom::distance_sq(shared_->points->point(pid), best_pos) <=
              shared_->params.rs * shared_->params.rs) {
            ++newly;
          }
        }
        shared_->audit->record({world().sim().now(), id(), -1, "benefit",
                                best.point, best_pos, best.benefit,
                                choice->runner_up, choice->scanned, newly,
                                msg.trace_id});
      }
      broadcast_reliable(msg);
    } else {
      ++idle_streak_;
    }
    // Idle nodes back off exponentially (up to 8x) so a converged
    // network costs little; failures reset the streak.
    const double backoff =
        static_cast<double>(1u << std::min(idle_streak_, 3u));
    set_timer(shared_->check_interval * backoff, [this] { tick(); });
  }

  std::shared_ptr<Shared> shared_;
  std::unordered_map<PosKey, std::uint32_t, PosKeyHash> notices_;
  std::unordered_map<PosKey, std::uint32_t, PosKeyHash> my_placements_;
  std::uint32_t idle_streak_ = 0;
};

}  // namespace

VoronoiSimHarness::VoronoiSimHarness(VoronoiSimConfig cfg)
    : cfg_(std::move(cfg)) {
  // Reboot-capable campaigns need the ARQ dedup purge; applied before
  // Shared copies the params (see GridSimHarness for the rationale).
  if (!cfg_.fault_plan.empty()) cfg_.arq.purge_on_give_up = true;
  const auto& p = cfg_.params;
  world_ = std::make_unique<sim::World>(p.field, cfg_.radio, cfg_.seed,
                                        p.rc);
  // Shared-bus wiring mirrors GridSimHarness: attach every producer
  // before any sink opens, then add the optional extra sinks.
  world_->trace().attach_bus(&bus_);
  timeline_.attach_bus(&bus_);
  audit_.attach_bus(&bus_);
  metrics_snap_.attach_bus(&bus_);
  if (!cfg_.telemetry_stream.empty()) {
    auto stream = std::make_unique<common::FrameStreamSink>(
        cfg_.telemetry_stream);
    DECOR_REQUIRE_MSG(stream->ok(), "cannot open telemetry stream: " +
                                        cfg_.telemetry_stream);
    telemetry_sink_ = stream.get();
    bus_.add_sink(std::move(stream));
  }
  if (!cfg_.otlp.empty()) {
    auto otlp = std::make_unique<common::OtlpSink>(cfg_.otlp);
    otlp->set_span_namer([](std::string_view kind, std::string_view detail) {
      return otlp_span_name(kind, detail);
    });
    bus_.add_sink(std::move(otlp));
    world_->trace().enable(true);
  }
  if (cfg_.trace_capacity > 0) {
    world_->trace().set_capacity(cfg_.trace_capacity);
  }
  if (!cfg_.trace_jsonl.empty()) {
    // An unopenable sink is a fatal misconfiguration: silently running
    // without the dump the caller asked for wastes the whole run.
    DECOR_REQUIRE_MSG(world_->trace().open_jsonl(cfg_.trace_jsonl),
                      "cannot open trace JSONL sink: " + cfg_.trace_jsonl);
  }
  if (cfg_.trace || !cfg_.trace_jsonl.empty()) world_->trace().enable(true);
  if (!cfg_.timeline_jsonl.empty()) {
    DECOR_REQUIRE_MSG(timeline_.open_jsonl(cfg_.timeline_jsonl),
                      "cannot open timeline JSONL sink: " + cfg_.timeline_jsonl);
  }
  if (!cfg_.flight_dir.empty()) {
    // Same fail-fast contract as the JSONL sinks: discovering at dump
    // time that the post-mortem directory is unwritable loses the
    // evidence the caller asked to keep.
    DECOR_REQUIRE_MSG(sim::prepare_flight_dir(cfg_.flight_dir),
                      "cannot write flight dir: " + cfg_.flight_dir);
  }
  common::Rng point_rng(cfg_.seed ^ 0x5eedbeefULL);
  map_ = std::make_unique<coverage::CoverageMap>(
      p.field, make_points(p, point_rng), p.rs);
  if (cfg_.field_interval > 0.0 || !cfg_.field_jsonl.empty()) {
    const std::size_t side =
        cfg_.field_raster > 0
            ? cfg_.field_raster
            : coverage::FieldRecorder::default_raster(p.field, p.rs);
    field_ = std::make_unique<coverage::FieldRecorder>(p.field, p.k, side,
                                                       side);
    field_->attach_bus(&bus_);
    if (!cfg_.field_jsonl.empty()) {
      DECOR_REQUIRE_MSG(field_->open_jsonl(cfg_.field_jsonl),
                        "cannot open field JSONL sink: " + cfg_.field_jsonl);
    }
  }
  if (!cfg_.audit_jsonl.empty()) {
    DECOR_REQUIRE_MSG(audit_.open_jsonl(cfg_.audit_jsonl),
                      "cannot open audit JSONL sink: " + cfg_.audit_jsonl);
  }
  if (!cfg_.metrics_jsonl.empty()) {
    DECOR_REQUIRE_MSG(metrics_snap_.open_jsonl(cfg_.metrics_jsonl),
                      "cannot open metrics JSONL sink: " + cfg_.metrics_jsonl);
  }
  shared_ = std::make_shared<Shared>();
  shared_->params = p;
  shared_->check_interval = cfg_.check_interval;
  shared_->harness = this;
  shared_->points = &map_->index();
  shared_->heartbeat = cfg_.heartbeat;
  shared_->enable_arq = cfg_.enable_arq;
  shared_->arq = cfg_.arq;
  shared_->data_plane = cfg_.data_plane;
  if (cfg_.audit || !cfg_.audit_jsonl.empty()) shared_->audit = &audit_;
  if (!cfg_.fault_plan.empty()) {
    sim::FaultInjector::Hooks hooks;
    hooks.kill = [this](std::uint32_t id) { kill_node(id); };
    hooks.reboot = [this](std::uint32_t id) { reboot_node(id); };
    const bool has_sink = cfg_.data_plane.enabled;
    const std::uint32_t sink = cfg_.data_plane.sink;
    hooks.is_protected = [has_sink, sink](std::uint32_t id) {
      return has_sink && id == sink;
    };
    hooks.sink = sink;
    hooks.has_sink = has_sink;
    injector_ = std::make_unique<sim::FaultInjector>(*world_, cfg_.fault_plan,
                                                     std::move(hooks));
    injector_->arm();
  }
  if (cfg_.invariant_interval > 0.0) register_invariants();
}

void VoronoiSimHarness::register_invariants() {
  // Leaderless scheme: same invariant catalog as the grid harness minus
  // leader uniqueness (see GridSimHarness::register_invariants for the
  // per-check rationale).
  monitor_.add_check("coverage-alive", [this]() -> std::optional<std::string> {
    const auto& idx = map_->index();
    std::vector<std::uint32_t> counts(idx.size(), 0);
    for (std::uint32_t id : world_->alive_ids()) {
      idx.for_each_in_disc(world_->position(id), cfg_.params.rs,
                           [&](std::size_t pid) { ++counts[pid]; });
    }
    std::size_t covered = 0;
    for (auto c : counts) {
      if (c >= cfg_.params.k) ++covered;
    }
    const std::size_t believed = map_->num_covered(cfg_.params.k);
    if (covered != believed) {
      return "alive nodes cover " + std::to_string(covered) +
             " points but the map credits " + std::to_string(believed);
    }
    return std::nullopt;
  });
  monitor_.add_check("arq-conservation",
                     [this]() -> std::optional<std::string> {
    const auto& a = shared_->arq_stats;
    std::uint64_t in_flight = 0;
    for (std::uint32_t id : world_->alive_ids()) {
      if (auto* sn = dynamic_cast<net::SensorNode*>(&world_->node(id))) {
        if (auto* l = sn->link()) in_flight += l->in_flight();
      }
    }
    const std::uint64_t accounted =
        a.completed + a.failed + a.abandoned + in_flight;
    if (a.sent != accounted) {
      return "sent=" + std::to_string(a.sent) + " but completed+failed+" +
             "abandoned+in_flight=" + std::to_string(accounted);
    }
    return std::nullopt;
  });
  monitor_.add_check("goodput-bound", [this]() -> std::optional<std::string> {
    const auto& d = shared_->data_stats;
    if (d.readings_delivered > d.readings_originated) {
      return "delivered " + std::to_string(d.readings_delivered) +
             " unique readings but only " +
             std::to_string(d.readings_originated) + " were originated";
    }
    return std::nullopt;
  });
  monitor_.set_on_first_violation(
      [this](const std::string& name, const std::string& detail) {
        if (!cfg_.flight_dir.empty()) {
          dump_flight_bundle("invariant", name + ": " + detail);
        }
      });
}

VoronoiSimHarness::~VoronoiSimHarness() = default;

std::uint32_t VoronoiSimHarness::spawn_node(geom::Point2 pos) {
  const auto id =
      world_->spawn(pos, std::make_unique<DecorVoronoiSimNode>(shared_));
  map_->add_disc(pos);
  if (initial_deployed_) placements_.push_back(pos);
  return id;
}

void VoronoiSimHarness::kill_node(std::uint32_t id) {
  if (!world_->alive(id)) return;
  const auto pos = world_->position(id);
  world_->kill(id);
  map_->remove_disc(pos);
}

void VoronoiSimHarness::reboot_node(std::uint32_t id) {
  if (world_->alive(id)) return;
  world_->reboot(id, std::make_unique<DecorVoronoiSimNode>(shared_));
  map_->add_disc(world_->position(id));
}

void VoronoiSimHarness::schedule_random_kills(double at, std::size_t count) {
  world_->sim().schedule_at(at, [this, count] {
    auto alive = world_->alive_ids();
    // Mirror of the grid harness: random chaos never kills the
    // data-plane sink; only an explicit sink_outage fault event may.
    if (cfg_.data_plane.enabled) std::erase(alive, cfg_.data_plane.sink);
    const auto picks =
        world_->rng().sample_indices(alive.size(),
                                     std::min(count, alive.size()));
    for (std::size_t idx : picks) kill_node(alive[idx]);
  });
}

sim::TimelineSample VoronoiSimHarness::sample_timeline() {
  sim::TimelineSample s;
  s.t = world_->sim().now();
  s.covered_fraction = map_->fraction_covered(cfg_.params.k);
  s.uncovered_points = static_cast<std::uint64_t>(
      map_->num_points() - map_->num_covered(cfg_.params.k));
  s.alive_nodes = world_->alive_count();
  std::uint64_t in_flight = 0;
  for (std::uint32_t id : world_->alive_ids()) {
    if (auto* sn = dynamic_cast<net::SensorNode*>(&world_->node(id))) {
      if (auto* l = sn->link()) in_flight += l->in_flight();
    }
  }
  s.arq_in_flight = in_flight;
  // Leaderless scheme: the leaders field stays empty.
  if (cfg_.data_plane.enabled) {
    s.has_readings = true;
    s.readings_delivered = shared_->data_stats.readings_delivered;
    s.reading_bytes = shared_->data_stats.bytes_delivered;
  }
  if (monitor_.active()) {
    s.has_invariants = true;
    s.invariant_violations = monitor_.violations();
  }
  if (cfg_.timeline_arq) {
    s.has_arq_detail = true;
    s.arq_sent = shared_->arq_stats.sent;
    s.arq_retx = shared_->arq_stats.retx;
  }
  return s;
}

void VoronoiSimHarness::dump_flight_bundle(const std::string& reason,
                                           const std::string& detail) {
  sim::FlightBundleInfo info;
  info.reason = reason;
  info.sim_time = world_->sim().now();
  info.scheme = "voronoi";
  info.detail = detail;
  if (injector_) info.faults_json = injector_->manifest_json();
  if (field_ != nullptr) {
    info.field_jsonl = field_->header_json() + "\n";
    if (const auto* s = field_->latest()) {
      info.field_jsonl += coverage::FieldRecorder::snapshot_json(*s) + "\n";
    }
  }
  if (metrics_snap_.snapshots_taken() > 0) {
    info.metrics_jsonl = "{\"schema\":\"decor.metrics.v1\"}\n";
    for (const auto& line : metrics_snap_.tail()) {
      info.metrics_jsonl += line + "\n";
    }
  }
  sim::write_flight_bundle(cfg_.flight_dir, info, world_->trace(),
                           &timeline_);
}

void VoronoiSimHarness::watchdog_seed() {
  // Only unowned uncovered points stall the protocol; drop a starter at
  // the uncovered point nearest to the deployed network (or the first
  // uncovered point when the field is empty).
  const auto& index = map_->index();
  geom::Point2 best_pos{};
  std::uint64_t best_pid = 0;
  double best_d = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t pid = 0; pid < index.size(); ++pid) {
    if (map_->kp(pid) >= cfg_.params.k) continue;
    const geom::Point2 p = index.point(pid);
    double d = 0.0;
    if (world_->alive_count() > 0) {
      d = std::numeric_limits<double>::infinity();
      for (double r = cfg_.params.rc;; r *= 2.0) {
        world_->index().for_each_in_disc(
            p, r, [&](std::uint32_t, geom::Point2 spos) {
              d = std::min(d, geom::distance_sq(p, spos));
            });
        if (d < std::numeric_limits<double>::infinity()) break;
        if (r > 4.0 * (cfg_.params.field.width() +
                       cfg_.params.field.height())) {
          break;
        }
      }
    }
    if (!found || d < best_d) {
      best_d = d;
      best_pos = p;
      best_pid = pid;
      found = true;
    }
  }
  if (found) {
    world_->trace().record(world_->sim().now(), sim::TraceKind::kProtocol, 0,
                           "watchdog_seed");
    // The stall itself is evidence worth keeping: the bundle captures the
    // state that forced manual (robot) intervention.
    if (!cfg_.flight_dir.empty()) {
      dump_flight_bundle("watchdog", "stalled; seeding frontier");
    }
    if (shared_->audit != nullptr) {
      // The watchdog is the harness (the paper's robot), not a node: no
      // actor id, no benefit scan, no announcement to trace.
      shared_->audit->record({world_->sim().now(), 0, -1, "watchdog",
                              best_pid, best_pos, 0, 0, 0, 0, 0});
    }
    spawn_node(best_pos);
    ++seeded_;
  }
}

VoronoiSimResult VoronoiSimHarness::run() {
  if (!initial_deployed_) {
    for (const auto& pos : cfg_.initial_positions) spawn_node(pos);
    initial_nodes_ = cfg_.initial_positions.size();
    initial_deployed_ = true;
  }

  if (cfg_.timeline_interval > 0.0 && !timeline_.active()) {
    timeline_.start(world_->sim(), cfg_.timeline_interval,
                    [this] { return sample_timeline(); });
  }
  if (cfg_.invariant_interval > 0.0 && !monitor_.active()) {
    monitor_.start(world_->sim(), cfg_.invariant_interval);
  }
  if ((cfg_.metrics_interval > 0.0 || !cfg_.metrics_jsonl.empty()) &&
      !metrics_snap_.active()) {
    const double every =
        cfg_.metrics_interval > 0.0
            ? cfg_.metrics_interval
            : (cfg_.timeline_interval > 0.0 ? cfg_.timeline_interval : 1.0);
    metrics_snap_.start(world_->sim(), every);
  }

  VoronoiSimResult result;
  result.initial_nodes = initial_nodes_;
  const std::size_t placements_before = placements_.size();
  const std::size_t seeded_before = seeded_;

  struct PollState {
    double finish_time;
    bool covered = false;
    std::size_t last_covered = 0;
    double last_progress = 0.0;
  };
  auto state = std::make_shared<PollState>(
      PollState{cfg_.run_time, false, 0, world_->sim().now()});
  auto poll = std::make_shared<std::function<void()>>();
  // Weak self-capture: no ownership cycle (see sim_runner.cpp).
  std::weak_ptr<std::function<void()>> weak_poll = poll;
  *poll = [this, state, weak_poll] {
    if (map_->fully_covered(cfg_.params.k)) {
      state->covered = true;
      state->finish_time = world_->sim().now();
      // The milestone lands in the trace so a dump alone (without the
      // harness result) still yields the convergence time, and on the
      // timeline so its convergence query sees a zero-uncovered sample.
      world_->trace().record(world_->sim().now(), sim::TraceKind::kProtocol,
                             0, "converged");
      if (timeline_.active()) timeline_.sample_once();
      if (metrics_snap_.active()) metrics_snap_.snapshot_once();
      // Final proof pass at the convergence instant, mirroring the
      // timeline's forced sample.
      if (monitor_.active()) monitor_.check_now();
      // Forced snapshot at the convergence instant: the final (hole-free)
      // field always lands on the recorder even between cadence ticks.
      if (field_) field_->snapshot(world_->sim().now(), *map_, true);
      if (cfg_.linger_after_coverage > 0.0) {
        // Fixed post-restoration horizon for data-plane goodput (see
        // sim_runner.cpp); run_until still caps at run_time.
        world_->sim().schedule(cfg_.linger_after_coverage,
                               [this] { world_->sim().stop(); });
      } else {
        world_->sim().stop();
      }
      return;
    }
    const std::size_t covered = map_->num_covered(cfg_.params.k);
    if (covered > state->last_covered) {
      state->last_covered = covered;
      state->last_progress = world_->sim().now();
    } else if (world_->sim().now() - state->last_progress >=
               cfg_.stall_timeout) {
      watchdog_seed();
      state->last_progress = world_->sim().now();
    }
    if (auto self = weak_poll.lock()) world_->sim().schedule(0.5, *self);
  };
  world_->sim().schedule(0.5, *poll);
  // Periodic field snapshots ride their own weak self-scheduling chain
  // (same lifetime contract as the poll); the first fires immediately so
  // the pre-restoration deficit field is always recorded.
  auto field_tick = std::make_shared<std::function<void()>>();
  if (field_) {
    const double every =
        cfg_.field_interval > 0.0 ? cfg_.field_interval : 1.0;
    std::weak_ptr<std::function<void()>> weak_field = field_tick;
    *field_tick = [this, every, weak_field] {
      field_->snapshot(world_->sim().now(), *map_);
      if (auto self = weak_field.lock()) world_->sim().schedule(every, *self);
    };
    world_->sim().schedule(0.0, *field_tick);
  }
  try {
    world_->sim().run_until(cfg_.run_time);
  } catch (const std::exception& e) {
    // Best-effort post-mortem before the error propagates.
    if (!cfg_.flight_dir.empty()) dump_flight_bundle("exception", e.what());
    throw;
  }

  result.reached_full_coverage =
      state->covered || map_->fully_covered(cfg_.params.k);
  if (!cfg_.flight_dir.empty() && !result.reached_full_coverage) {
    dump_flight_bundle(
        "non-convergence",
        std::to_string(map_->num_points() -
                       map_->num_covered(cfg_.params.k)) +
            " points below k-coverage at run_time");
  }
  result.finish_time = state->finish_time;
  result.end_time = world_->sim().now();
  result.placed_nodes = placements_.size();
  result.seeded_nodes = seeded_;
  result.placements = placements_;
  result.radio_tx = world_->radio().total_tx();
  result.radio_rx = world_->radio().total_rx();
  result.arq = shared_->arq_stats;
  result.data = shared_->data_stats;
  if (injector_) result.faults_fired = injector_->faults_fired();
  result.radio_corrupted = world_->radio().total_corrupted();
  result.radio_partition_blocked = world_->radio().total_partition_blocked();
  result.invariant_checks = monitor_.checks_run();
  result.invariant_violations = monitor_.violations();
  result.metrics = coverage::compute_metrics(*map_, cfg_.params.k + 1);
  // One update per run (deltas since run() entry, so repeated runs on
  // one harness never double-count); the hot protocol path stays free of
  // instrumentation.
  if (common::metrics_enabled()) {
    auto& m = common::metrics();
    static common::Counter& runs = m.counter("protocol.voronoi.runs");
    static common::Counter& placed =
        m.counter("protocol.voronoi.placements");
    static common::Counter& seeded = m.counter("protocol.voronoi.seeded");
    static common::Counter& covered =
        m.counter("protocol.voronoi.covered_runs");
    runs.inc();
    placed.inc(placements_.size() - placements_before);
    seeded.inc(seeded_ - seeded_before);
    if (result.reached_full_coverage) covered.inc();
  }
  // End-of-run barrier for buffered sinks (OTLP document, live stream).
  bus_.flush();
  // See GridSimHarness::run(): post-flush whole-frame drop accounting.
  if (telemetry_sink_ != nullptr && common::metrics_enabled()) {
    const std::uint64_t dropped = telemetry_sink_->frames_dropped();
    common::metrics()
        .counter("telemetry.dropped_frames")
        .inc(dropped - telemetry_dropped_reported_);
    telemetry_dropped_reported_ = dropped;
  }
  return result;
}

VoronoiSimResult run_voronoi_decor_sim(const VoronoiSimConfig& cfg) {
  VoronoiSimHarness harness(cfg);
  return harness.run();
}

}  // namespace decor::core
