#include "lds/hammersley.hpp"

#include "common/require.hpp"
#include "lds/radical_inverse.hpp"

namespace decor::lds {

std::vector<geom::Point2> hammersley_points(const geom::Rect& bounds,
                                            std::size_t n,
                                            std::uint32_t base,
                                            std::uint64_t scramble_seed) {
  DECOR_REQUIRE_MSG(n > 0, "Hammersley set must be non-empty");
  DECOR_REQUIRE_MSG(bounds.width() > 0 && bounds.height() > 0,
                    "Hammersley bounds must be non-degenerate");
  std::vector<geom::Point2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Offset by 1/2 in the first coordinate so no point sits on the left
    // edge (keeps the set symmetric inside the rectangle).
    const double u = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    const double v = scrambled_radical_inverse(i, base, scramble_seed);
    out.push_back({bounds.x0 + u * bounds.width(),
                   bounds.y0 + v * bounds.height()});
  }
  return out;
}

}  // namespace decor::lds
