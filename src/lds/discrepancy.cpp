#include "lds/discrepancy.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace decor::lds {

namespace {

struct UnitPoint {
  double x, y;
};

std::vector<UnitPoint> normalize(const std::vector<geom::Point2>& points,
                                 const geom::Rect& bounds) {
  DECOR_REQUIRE_MSG(bounds.width() > 0 && bounds.height() > 0,
                    "discrepancy bounds must be non-degenerate");
  std::vector<UnitPoint> out;
  out.reserve(points.size());
  for (const auto& p : points) {
    DECOR_REQUIRE_MSG(bounds.contains(p), "point outside discrepancy bounds");
    out.push_back({(p.x - bounds.x0) / bounds.width(),
                   (p.y - bounds.y0) / bounds.height()});
  }
  return out;
}

}  // namespace

double star_discrepancy(const std::vector<geom::Point2>& points,
                        const geom::Rect& bounds) {
  DECOR_REQUIRE_MSG(!points.empty(), "discrepancy of empty set");
  auto pts = normalize(points, bounds);
  const std::size_t n = pts.size();
  const double inv_n = 1.0 / static_cast<double>(n);

  std::sort(pts.begin(), pts.end(),
            [](const UnitPoint& a, const UnitPoint& b) { return a.x < b.x; });

  // Candidate v thresholds: every y coordinate plus 1.0.
  std::vector<double> vs;
  vs.reserve(n + 1);
  for (const auto& p : pts) vs.push_back(p.y);
  vs.push_back(1.0);
  std::sort(vs.begin(), vs.end());
  vs.erase(std::unique(vs.begin(), vs.end()), vs.end());

  double best = 0.0;
  // ys_prefix holds, sorted, the y coordinates of the points currently in
  // the x-prefix; rebuilt incrementally as u sweeps right.
  std::vector<double> ys_prefix;
  ys_prefix.reserve(n);

  std::size_t i = 0;
  auto evaluate = [&](double u, const std::vector<double>& open_ys,
                      const std::vector<double>& closed_ys) {
    for (double v : vs) {
      const auto open_cnt = static_cast<double>(
          std::lower_bound(open_ys.begin(), open_ys.end(), v) -
          open_ys.begin());
      const auto closed_cnt = static_cast<double>(
          std::upper_bound(closed_ys.begin(), closed_ys.end(), v) -
          closed_ys.begin());
      const double area = u * v;
      best = std::max(best, area - open_cnt * inv_n);
      best = std::max(best, closed_cnt * inv_n - area);
    }
  };

  while (i < n) {
    const double u = pts[i].x;
    // open set: strictly left of u = current prefix (before adding ties).
    const std::vector<double> open_ys = ys_prefix;
    // closed set: include every point with x == u.
    std::size_t j = i;
    while (j < n && pts[j].x == u) {
      ys_prefix.insert(
          std::upper_bound(ys_prefix.begin(), ys_prefix.end(), pts[j].y),
          pts[j].y);
      ++j;
    }
    evaluate(u, open_ys, ys_prefix);
    i = j;
  }
  // u = 1: all points are inside on both open and closed counts.
  evaluate(1.0, ys_prefix, ys_prefix);
  return best;
}

double star_discrepancy_sampled(const std::vector<geom::Point2>& points,
                                const geom::Rect& bounds, std::size_t samples,
                                common::Rng& rng) {
  DECOR_REQUIRE_MSG(!points.empty(), "discrepancy of empty set");
  const auto pts = normalize(points, bounds);
  const double inv_n = 1.0 / static_cast<double>(pts.size());
  double best = 0.0;
  for (std::size_t s = 0; s < samples; ++s) {
    const double u = rng.uniform();
    const double v = rng.uniform();
    std::size_t cnt = 0;
    for (const auto& p : pts) {
      if (p.x <= u && p.y <= v) ++cnt;
    }
    best = std::max(best,
                    std::abs(static_cast<double>(cnt) * inv_n - u * v));
  }
  return best;
}

}  // namespace decor::lds
