#include "lds/random_points.hpp"

#include <cmath>

#include "common/require.hpp"

namespace decor::lds {

geom::Point2 random_point(const geom::Rect& bounds, common::Rng& rng) {
  return {rng.uniform(bounds.x0, bounds.x1), rng.uniform(bounds.y0, bounds.y1)};
}

std::vector<geom::Point2> random_points(const geom::Rect& bounds,
                                        std::size_t n, common::Rng& rng) {
  std::vector<geom::Point2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(random_point(bounds, rng));
  return out;
}

std::vector<geom::Point2> jittered_points(const geom::Rect& bounds,
                                          std::size_t n, common::Rng& rng) {
  DECOR_REQUIRE_MSG(n > 0, "jittered set must be non-empty");
  const auto nx = static_cast<std::size_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  const std::size_t ny = (n + nx - 1) / nx;
  const double cw = bounds.width() / static_cast<double>(nx);
  const double ch = bounds.height() / static_cast<double>(ny);
  std::vector<geom::Point2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ix = i % nx;
    const std::size_t iy = i / nx;
    out.push_back({bounds.x0 + (static_cast<double>(ix) + rng.uniform()) * cw,
                   bounds.y0 + (static_cast<double>(iy) + rng.uniform()) * ch});
  }
  return out;
}

}  // namespace decor::lds
