// The Hammersley point set in two dimensions.
//
// For a fixed cardinality N, the Hammersley set (i/N, Phi_2(i)) achieves
// discrepancy O(log^{d-1} N / N) — one log factor better than Halton — at
// the cost of needing N up front. The paper reports results for both and
// finds them equivalent for DECOR; we provide both so the equivalence can
// be reproduced (see tests and bench/fig04_field_points).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace decor::lds {

/// The N-point Hammersley set scaled into `bounds`.
std::vector<geom::Point2> hammersley_points(const geom::Rect& bounds,
                                            std::size_t n,
                                            std::uint32_t base = 2,
                                            std::uint64_t scramble_seed = 0);

}  // namespace decor::lds
