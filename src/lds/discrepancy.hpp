// Star-discrepancy estimation.
//
// The star discrepancy D*(P) of a point set P in the unit square is
//   sup over anchored boxes B=[0,u)x[0,v) of | |P ∩ B|/|P| − area(B) |.
// Exact computation is exponential in the dimension; in 2-D the supremum is
// attained with box corners on the coordinate grid induced by the points,
// which gives an exact O(N^2 log N)-ish algorithm, plus a cheaper sampled
// estimator for large sets. Used by tests and bench/fig04 to verify the
// paper's premise that Halton/Hammersley beat random sampling.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace decor::lds {

/// Exact star discrepancy of `points` relative to `bounds` (points are
/// normalized into the unit square first). O(N^2) time, O(N) space —
/// intended for N up to a few thousand.
double star_discrepancy(const std::vector<geom::Point2>& points,
                        const geom::Rect& bounds);

/// Monte-Carlo lower bound on the star discrepancy: evaluates the local
/// discrepancy at `samples` random anchored boxes. Cheap and sufficient to
/// rank generators.
double star_discrepancy_sampled(const std::vector<geom::Point2>& points,
                                const geom::Rect& bounds, std::size_t samples,
                                common::Rng& rng);

}  // namespace decor::lds
