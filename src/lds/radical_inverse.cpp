#include "lds/radical_inverse.hpp"

#include <array>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace decor::lds {

double radical_inverse(std::uint64_t n, std::uint32_t base) noexcept {
  DECOR_ASSERT(base >= 2);
  const double inv_base = 1.0 / static_cast<double>(base);
  double scale = inv_base;
  double value = 0.0;
  while (n > 0) {
    value += static_cast<double>(n % base) * scale;
    n /= base;
    scale *= inv_base;
  }
  return value;
}

double scrambled_radical_inverse(std::uint64_t n, std::uint32_t base,
                                 std::uint64_t seed) noexcept {
  DECOR_ASSERT(base >= 2);
  if (seed == 0) return radical_inverse(n, base);
  const double inv_base = 1.0 / static_cast<double>(base);
  double scale = inv_base;
  double value = 0.0;
  std::uint32_t digit_index = 0;
  while (n > 0) {
    const std::uint64_t digit = n % base;
    // Per-digit-position rotation derived from the seed: a valid digit
    // scrambling (bijective per position) that keeps the sequence
    // low-discrepancy while decorrelating different seeds.
    const std::uint64_t rot =
        common::mix64(seed ^ (0x9e3779b97f4a7c15ULL * (digit_index + 1))) %
        base;
    value += static_cast<double>((digit + rot) % base) * scale;
    n /= base;
    scale *= inv_base;
    ++digit_index;
  }
  return value;
}

std::uint32_t nth_prime(std::size_t i) {
  static constexpr std::array<std::uint32_t, 64> kPrimes = {
      2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
      43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
      103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
      173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
      241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311};
  DECOR_REQUIRE_MSG(i < kPrimes.size(), "prime index out of range");
  return kPrimes[i];
}

}  // namespace decor::lds
