// Radical inverse (van der Corput) functions — the building block of the
// Halton sequence and Hammersley set.
//
// The radical inverse Phi_b(n) mirrors the base-b digits of n around the
// radix point: n = sum d_i b^i  ->  Phi_b(n) = sum d_i b^{-i-1}. The
// resulting one-dimensional sequence is low-discrepancy, and pairing
// different prime bases (or pairing with n/N) yields the 2-D sets DECOR
// uses to approximate the monitored area.
#pragma once

#include <cstdint>

namespace decor::lds {

/// Phi_b(n) in [0, 1). Requires base >= 2.
double radical_inverse(std::uint64_t n, std::uint32_t base) noexcept;

/// Scrambled radical inverse: digit d of index i is permuted to
/// (d + seed_hash(i)) mod base before mirroring. Deterministic in `seed`;
/// seed == 0 reduces to the plain radical inverse.
double scrambled_radical_inverse(std::uint64_t n, std::uint32_t base,
                                 std::uint64_t seed) noexcept;

/// The i-th prime (0 -> 2, 1 -> 3, ...) for i < 64; used to pick Halton
/// bases per dimension.
std::uint32_t nth_prime(std::size_t i);

}  // namespace decor::lds
