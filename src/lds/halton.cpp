#include "lds/halton.hpp"

#include "common/require.hpp"
#include "lds/radical_inverse.hpp"

namespace decor::lds {

HaltonGenerator::HaltonGenerator(geom::Rect bounds, std::uint32_t base_x,
                                 std::uint32_t base_y,
                                 std::uint64_t scramble_seed,
                                 std::uint64_t start_index)
    : bounds_(bounds),
      base_x_(base_x),
      base_y_(base_y),
      scramble_seed_(scramble_seed),
      index_(start_index) {
  DECOR_REQUIRE_MSG(base_x >= 2 && base_y >= 2, "Halton bases must be >= 2");
  DECOR_REQUIRE_MSG(base_x != base_y,
                    "Halton bases must be distinct (coprime) per dimension");
  DECOR_REQUIRE_MSG(bounds.width() > 0 && bounds.height() > 0,
                    "Halton bounds must be non-degenerate");
}

geom::Point2 HaltonGenerator::at(std::uint64_t i) const {
  const double u = scrambled_radical_inverse(i, base_x_, scramble_seed_);
  const double v = scrambled_radical_inverse(
      i, base_y_, scramble_seed_ == 0 ? 0 : scramble_seed_ + 1);
  return {bounds_.x0 + u * bounds_.width(), bounds_.y0 + v * bounds_.height()};
}

geom::Point2 HaltonGenerator::next() { return at(index_++); }

std::vector<geom::Point2> HaltonGenerator::take(std::size_t n) {
  std::vector<geom::Point2> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

std::vector<geom::Point2> halton_points(const geom::Rect& bounds,
                                        std::size_t n,
                                        std::uint64_t scramble_seed) {
  HaltonGenerator gen(bounds, 2, 3, scramble_seed, 1);
  return gen.take(n);
}

}  // namespace decor::lds
