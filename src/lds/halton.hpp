// The Halton sequence in two dimensions.
//
// DECOR approximates the monitored area with N Halton points: the sequence
// has star discrepancy O(log^d N / N), far below the O(sqrt(log log N / N))
// of random sampling, so coverage of the point set tracks coverage of the
// continuous area tightly (Section 3.2 of the paper).
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace decor::lds {

/// Incremental generator of 2-D Halton points scaled into a rectangle.
/// Bases default to (2, 3); a nonzero scramble seed applies deterministic
/// digit scrambling (useful to decorrelate multiple fields).
class HaltonGenerator {
 public:
  explicit HaltonGenerator(geom::Rect bounds, std::uint32_t base_x = 2,
                           std::uint32_t base_y = 3,
                           std::uint64_t scramble_seed = 0,
                           std::uint64_t start_index = 1);

  /// Next point of the sequence.
  geom::Point2 next();

  /// The i-th point (absolute index; does not disturb the cursor).
  geom::Point2 at(std::uint64_t i) const;

  /// Generates `n` consecutive points.
  std::vector<geom::Point2> take(std::size_t n);

  const geom::Rect& bounds() const noexcept { return bounds_; }

 private:
  geom::Rect bounds_;
  std::uint32_t base_x_;
  std::uint32_t base_y_;
  std::uint64_t scramble_seed_;
  std::uint64_t index_;
};

/// Convenience: the first `n` Halton points in `bounds` (index starts at 1,
/// skipping the degenerate origin point of index 0).
std::vector<geom::Point2> halton_points(const geom::Rect& bounds,
                                        std::size_t n,
                                        std::uint64_t scramble_seed = 0);

}  // namespace decor::lds
