// Uniform random point sets — the baseline DECOR's discrepancy argument is
// made against, and the generator for random initial sensor deployments.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "geometry/point.hpp"
#include "geometry/rect.hpp"

namespace decor::lds {

/// `n` i.i.d. uniform points in `bounds`.
std::vector<geom::Point2> random_points(const geom::Rect& bounds,
                                        std::size_t n, common::Rng& rng);

/// A single uniform point in `bounds`.
geom::Point2 random_point(const geom::Rect& bounds, common::Rng& rng);

/// Stratified jittered grid: one uniform point per cell of an
/// approximately-square nx x ny subdivision with nx*ny >= n (first n cells
/// in row-major order). Lower discrepancy than i.i.d., higher than Halton;
/// included as a middle-ground generator for ablation studies.
std::vector<geom::Point2> jittered_points(const geom::Rect& bounds,
                                          std::size_t n, common::Rng& rng);

}  // namespace decor::lds
