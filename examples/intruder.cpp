// Intruder detection (the paper's second motivating application).
//
// A surveillance network must detect an intruder with at least k sensors
// simultaneously — multi-sensor confirmation suppresses spurious reports
// and enables triangulation. This example deploys the same field at
// k = 1..4 with grid DECOR, walks a random-motion intruder across it, and
// measures detection multiplicity and localization error at each k. It
// demonstrates the claim (Section 1) that k-coverage improves both the
// detection confidence and the position estimate.
//
// Usage: intruder [--steps=400] [--seed=11]
#include <cmath>
#include <iostream>
#include <numbers>

#include "common/options.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "decor/decor.hpp"

namespace {

using namespace decor;

/// Centroid-of-detecting-sensors localization; returns the error.
double localize_error(const core::Field& field, geom::Point2 truth) {
  double sx = 0, sy = 0;
  std::size_t n = 0;
  field.sensors.index().for_each_in_disc(
      truth, field.params.rs, [&](std::uint32_t, geom::Point2 pos) {
        sx += pos.x;
        sy += pos.y;
        ++n;
      });
  if (n == 0) return -1.0;
  return geom::distance({sx / static_cast<double>(n),
                         sy / static_cast<double>(n)},
                        truth);
}

}  // namespace

int main(int argc, char** argv) {
  const common::Options opts(argc, argv);
  const auto steps = static_cast<std::size_t>(opts.get_int("steps", 400));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 11));

  std::cout << "intruder detection: random-walk intruder, " << steps
            << " steps, detection radius = rs = 4\n\n";

  common::Table table({"k", "nodes", "det.rate%", "mean sensors",
                       "conf>=k%", "mean loc err", "p95 loc err"});

  for (std::uint32_t k = 1; k <= 4; ++k) {
    core::DecorParams params;
    params.field = geom::make_rect(0, 0, 60, 60);
    params.num_points = 800;
    params.k = k;
    common::Rng rng(seed);
    core::Field field(params, rng);
    field.deploy_random(50, rng);
    core::grid_decor(field, rng);

    // Random-waypoint-ish walk: heading persists with small turns.
    common::Rng walk(seed + 1);  // same walk for every k
    geom::Point2 pos{30, 30};
    double heading = 0.0;
    common::Accumulator sensors_seen;
    std::vector<double> errors;
    std::size_t detected = 0, confirmed = 0;
    for (std::size_t s = 0; s < steps; ++s) {
      heading += walk.uniform(-0.5, 0.5);
      pos.x += std::cos(heading);
      pos.y += std::sin(heading);
      if (!params.field.contains(pos)) {
        pos = params.field.clamp(pos);
        heading += std::numbers::pi / 2.0;
      }
      const std::size_t watchers =
          field.sensors.index().count_in_disc(pos, params.rs);
      sensors_seen.add(static_cast<double>(watchers));
      if (watchers >= 1) ++detected;
      if (watchers >= k) ++confirmed;
      const double err = localize_error(field, pos);
      if (err >= 0.0) errors.push_back(err);
    }

    table.add_row(
        {std::to_string(k), std::to_string(field.sensors.alive_count()),
         std::to_string(100.0 * static_cast<double>(detected) /
                        static_cast<double>(steps)),
         std::to_string(sensors_seen.mean()),
         std::to_string(100.0 * static_cast<double>(confirmed) /
                        static_cast<double>(steps)),
         [&] {
           common::Accumulator acc;
           for (double e : errors) acc.add(e);
           return std::to_string(errors.empty() ? -1.0 : acc.mean());
         }(),
         std::to_string(errors.empty()
                            ? -1.0
                            : common::percentile(errors, 95.0))});
  }

  std::cout << table.to_text()
            << "\nhigher k: more simultaneous watchers -> higher-confidence "
               "detections and tighter localization.\n";
  return 0;
}
