// Quickstart: restore 3-coverage of a partially covered 100x100 field.
//
// Walks through the whole public API surface: build a field approximated
// with Halton points, scatter an initial deployment, run each engine and
// compare node counts, redundancy and message overhead.
//
// Usage: quickstart [--k=3] [--initial=200] [--seed=42]
#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "decor/decor.hpp"

int main(int argc, char** argv) {
  const decor::common::Options opts(argc, argv);

  decor::core::DecorParams base;  // paper defaults: 100x100, 2000 Halton
  base.k = static_cast<std::uint32_t>(opts.get_int("k", 3));
  const auto initial = static_cast<std::size_t>(opts.get_int("initial", 200));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 42));

  std::cout << "DECOR quickstart: k=" << base.k << ", rs=" << base.rs
            << ", field " << base.field.width() << "x"
            << base.field.height() << ", " << base.num_points
            << " Halton points, " << initial << " initial sensors\n\n";

  decor::common::Table table({"algorithm", "placed", "total", "covered",
                              "redundant%", "msgs/cell", "rounds"});

  for (const auto& cfg : decor::core::paper_configs(base)) {
    decor::common::Rng rng(seed);
    decor::core::Field field(cfg.params, rng);
    field.deploy_random(initial, rng);

    decor::core::EngineLimits limits;
    limits.max_new_nodes = 20000;  // generous cap for the random baseline
    const auto result =
        decor::core::run_engine(cfg.scheme, field, rng, limits);
    const auto redundancy = decor::coverage::find_redundant(
        field.map, field.sensors, cfg.params.k);

    table.add_row({cfg.label, std::to_string(result.placed_nodes),
                   std::to_string(result.total_nodes()),
                   result.reached_full_coverage ? "100%" : "partial",
                   std::to_string(static_cast<int>(
                       redundancy.fraction() * 100.0)),
                   std::to_string(static_cast<int>(
                       result.messages_per_cell())),
                   std::to_string(result.rounds)});
  }

  std::cout << table.to_text() << '\n';

  // Visualize one deployment: an uncovered field, then after restoration.
  decor::common::Rng rng(seed);
  decor::core::Field field(base, rng);
  field.deploy_random(initial, rng);
  std::cout << "field with " << initial << " random sensors (digits = "
            << "missing coverage depth, '.' = " << base.k << "-covered):\n"
            << decor::coverage::ascii_field(field.map, base.k) << '\n';
  decor::core::grid_decor(field, rng);
  std::cout << "after grid DECOR restoration:\n"
            << decor::coverage::ascii_field(field.map, base.k) << '\n';
  return 0;
}
