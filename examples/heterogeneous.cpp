// Heterogeneous networks: mixed sensing radii, exact verification.
//
// Section 2: "In a heterogeneous network deployment, the sensing and
// coverage radii of the sensors may vary ... Our solution is designed to
// work under such a setting." This example deploys an initial network of
// mixed-grade sensors (cheap rs=2.5 motes through premium rs=7 units),
// restores k-coverage with each scheme, verifies the result three ways —
// point set, dense sampling, and the exact Huang-Tseng perimeter check —
// and confirms the k-connectivity corollary on the result.
//
// Usage: heterogeneous [--k=2] [--seed=9]
#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "coverage/area_estimate.hpp"
#include "coverage/perimeter.hpp"
#include "decor/decor.hpp"
#include "graph/comm_graph.hpp"
#include "graph/vertex_connectivity.hpp"

using namespace decor;

int main(int argc, char** argv) {
  const common::Options opts(argc, argv);
  core::DecorParams params;
  params.field = geom::make_rect(0, 0, 60, 60);
  params.num_points = 900;
  params.k = static_cast<std::uint32_t>(opts.get_int("k", 2));
  params.rs = 4.0;  // radius of the replacement sensors DECOR places
  params.rc = 8.0;
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 9));

  std::cout << "heterogeneous restoration: 60x60 field, k=" << params.k
            << ", initial sensors with rs in [2.5, 7.0], replacements "
               "rs=4\n\n";

  common::Table table({"scheme", "placed", "total", "points k-cov",
                       "area k-cov%", "exact min cov", "kappa"});
  for (const auto& cfg : core::paper_configs(params)) {
    if (cfg.scheme == core::Scheme::kRandom) continue;
    common::Rng rng(seed);
    core::Field field(cfg.params, rng);
    field.deploy_random_heterogeneous(60, 2.5, 7.0, rng);
    const auto result = core::run_engine(cfg.scheme, field, rng);

    const double area_cov = coverage::area_coverage_grid(
        field.sensors, params.field, params.k, params.rs, 300);
    const auto exact_min =
        coverage::min_area_coverage(field.sensors, params.field, params.rs);
    const auto g = graph::build_comm_graph(field.sensors, params.rc);
    const auto kappa = graph::vertex_connectivity(g);

    table.add_row({cfg.label, std::to_string(result.placed_nodes),
                   std::to_string(result.total_nodes()),
                   result.reached_full_coverage ? "yes" : "NO",
                   std::to_string(100.0 * area_cov),
                   std::to_string(exact_min), std::to_string(kappa)});
  }
  std::cout << table.to_text()
            << "\nnotes: 'points k-cov' is what the algorithms optimize "
               "(the 900 Halton points);\n'area k-cov%' samples the "
               "continuum; 'exact min cov' is the Huang-Tseng perimeter\n"
               "minimum over the whole area (slivers between points keep "
               "it below k); kappa is the\nexact vertex connectivity at "
               "rc=2*rs — >= k per the paper's corollary.\n";
  return 0;
}
