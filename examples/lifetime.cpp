// Network lifetime through k-coverage (the paper's third motivation).
//
// "When k nodes are covering a point, we have the option of putting some
// of them to sleep or balance the workload among all k nodes." This
// example quantifies that: deploy at k = 1..4, give every node the same
// battery, and drain batteries with a duty-cycled schedule where each
// point only needs one *awake* covering sensor per epoch. Redundant
// coverage lets nodes sleep most epochs, so the time until the field
// loses 1-coverage grows with k.
//
// Usage: lifetime [--epochs=2000] [--seed=3]
#include <iostream>

#include "common/options.hpp"
#include "common/table.hpp"
#include "decor/decor.hpp"
#include "decor/sleep_scheduling.hpp"

using namespace decor;

int main(int argc, char** argv) {
  const common::Options opts(argc, argv);
  const auto max_epochs =
      static_cast<std::size_t>(opts.get_int("epochs", 2000));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 3));
  const double battery = opts.get_double("battery", 100.0);

  std::cout << "network lifetime vs coverage requirement (battery = "
            << battery << " awake-epochs per node)\n\n";

  common::Table table({"k", "nodes", "lifetime (epochs)", "mean awake",
                       "lifetime/node", "vs k=1"});
  double baseline = 0.0;
  for (std::uint32_t k = 1; k <= 4; ++k) {
    core::DecorParams params;
    params.field = geom::make_rect(0, 0, 50, 50);
    params.num_points = 600;
    params.k = k;
    common::Rng rng(seed);
    core::Field field(params, rng);
    field.deploy_random(40, rng);
    core::voronoi_decor(field, rng);

    const auto nodes = field.sensors.size();
    const auto result = core::simulate_lifetime(field, battery, max_epochs);
    const auto epoch = result.epochs;

    if (k == 1) baseline = static_cast<double>(epoch);
    table.add_row(
        {std::to_string(k), std::to_string(nodes), std::to_string(epoch),
         std::to_string(result.mean_awake),
         std::to_string(static_cast<double>(epoch) /
                        static_cast<double>(nodes)),
         std::to_string(static_cast<double>(epoch) /
                        std::max(baseline, 1.0))});
  }

  std::cout << table.to_text()
            << "\nk-coverage buys spare coverers, so duty-cycling extends "
               "the time until the first coverage hole.\n";
  return 0;
}
