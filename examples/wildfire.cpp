// Wildfire monitoring — the paper's headline application, end to end.
//
// Phase 1  DEPLOY   grid DECOR (event-driven protocol) k-covers the
//                   forest from a sparse initial drop.
// Phase 2  DETECT   a fire ignites and spreads; temperature-sampling
//                   nodes cross the alarm threshold in the pre-heating
//                   zone and flood alarms to the base station while the
//                   front destroys the sensors it reaches.
// Phase 3  RESTORE  the surviving network redeploys: heartbeats time the
//                   dead out, leaders re-elect and place replacements
//                   until the burn scar is k-covered again.
//
// Usage: wildfire [--k=2] [--side=40] [--speed=1.0] [--seed=7]
#include <iostream>
#include <memory>

#include "common/options.hpp"
#include "decor/decor.hpp"
#include "lds/random_points.hpp"
#include "net/alarm.hpp"
#include "sim/environment.hpp"

using namespace decor;

int main(int argc, char** argv) {
  const common::Options opts(argc, argv);
  const double side = opts.get_double("side", 40.0);
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 7));

  core::SimRunConfig cfg;
  cfg.params.field = geom::make_rect(0, 0, side, side);
  cfg.params.num_points = static_cast<std::size_t>(side * side / 2.0);
  cfg.params.k = static_cast<std::uint32_t>(opts.get_int("k", 2));
  cfg.params.rs = 4.0;
  cfg.params.cell_side = 5.0;
  cfg.seed = seed;
  cfg.run_time = 600.0;
  cfg.election = net::ElectionParams{20.0, 0.05, 0.01};
  common::Rng rng(seed);
  cfg.initial_positions = lds::random_points(
      cfg.params.field, static_cast<std::size_t>(side * side / 80.0), rng);

  std::cout << "wildfire scenario: " << side << "x" << side
            << " forest, k=" << cfg.params.k << ", "
            << cfg.initial_positions.size() << " initial sensors\n\n";

  // ---- Phase 1: deployment ------------------------------------------------
  core::GridSimHarness deploy_harness(cfg);
  const auto deploy = deploy_harness.run();
  std::cout << "[deploy] complete at t=" << deploy.finish_time << "s: "
            << deploy.initial_nodes << " initial + " << deploy.placed_nodes
            << " placed, " << deploy.radio_tx << " radio tx\n";
  if (!deploy.reached_full_coverage) {
    std::cout << "deployment did not complete; aborting\n";
    return 1;
  }
  std::vector<geom::Point2> deployed = cfg.initial_positions;
  deployed.insert(deployed.end(), deploy.placements.begin(),
                  deploy.placements.end());

  // ---- Phase 2: the fire, on a fresh world with sensing nodes --------------
  const double speed = opts.get_double("speed", 1.0);
  const double ignite_at = 10.0;
  auto fire = std::make_shared<sim::SpreadingFireField>(
      cfg.params.field.center(), ignite_at, speed);

  sim::World world(cfg.params.field, sim::RadioParams{1e-3, 1e-4, 0.0},
                   seed + 1);
  net::AlarmParams aparams;
  aparams.node.rc = 2.0 * cfg.params.rs;
  aparams.env = fire;
  aparams.threshold = 60.0;
  std::vector<std::uint32_t> ids;
  for (const auto& pos : deployed) {
    ids.push_back(world.spawn(pos, std::make_unique<net::AlarmNode>(aparams)));
  }
  const auto base =
      world.spawn({1.0, 1.0}, std::make_unique<net::AlarmNode>(aparams));
  double first_alarm = -1.0;
  std::size_t alarms_received = 0;
  world.node_as<net::AlarmNode>(base).subscribe(
      [&](const net::AlarmReport& r) {
        if (first_alarm < 0) first_alarm = r.time;
        ++alarms_received;
        (void)r;
      });

  // The front kills what it engulfs (weak self-capture: no cycle).
  auto burn = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak_burn = burn;
  *burn = [&, fire, weak_burn] {
    for (auto id : world.alive_ids()) {
      if (fire->burning(world.position(id), world.sim().now())) {
        world.kill(id);
      }
    }
    if (auto self = weak_burn.lock()) world.sim().schedule(0.5, *self);
  };
  world.sim().schedule(0.5, *burn);

  const double burn_until = ignite_at + (side / 4.0) / speed;
  world.sim().run_until(burn_until);  // front reaches side/4 radius
  const auto survivors = world.alive_ids();
  std::cout << "[detect] fire ignited at t=" << ignite_at
            << "s, front radius " << fire->front_radius(burn_until)
            << " by t=" << burn_until << "s\n"
            << "[detect] first alarm at base t=" << first_alarm << "s ("
            << first_alarm - ignite_at << "s after ignition), "
            << alarms_received << " origins heard, "
            << deployed.size() + 1 - survivors.size()
            << " sensors destroyed\n";

  // ---- Phase 3: restoration on the surviving network -----------------------
  core::SimRunConfig restore_cfg = cfg;
  restore_cfg.initial_positions.clear();
  for (auto id : survivors) {
    if (id != base) restore_cfg.initial_positions.push_back(world.position(id));
  }
  restore_cfg.seed = seed + 2;
  core::GridSimHarness restore_harness(restore_cfg);
  const auto restore = restore_harness.run();
  std::cout << "[restore] " << (restore.reached_full_coverage
                                    ? "complete"
                                    : "INCOMPLETE")
            << " at t=" << restore.finish_time << "s: "
            << restore.placed_nodes << " replacement sensors\n\n";
  std::cout << "burn scar and recovery ('.' = " << cfg.params.k
            << "-covered):\n"
            << coverage::ascii_field(restore_harness.map(), cfg.params.k,
                                     40, 20)
            << '\n';
  const auto metrics = coverage::compute_metrics(restore_harness.map(),
                                                 cfg.params.k + 1);
  std::cout << "final: " << coverage::summarize(metrics, cfg.params.k)
            << '\n';
  return restore.reached_full_coverage ? 0 : 1;
}
